"""Fuzz-driven load testing and the zero-nondeterminism gate.

The traffic source is PR 1's seeded MiniC generator
(:func:`repro.fuzz.generator.generate_program`): hundreds of distinct,
terminating, trap-free programs with profile/run input pairs — exactly
the corpus shape that makes compiled speculation really misspeculate.
Three phases, each a gate the CI ``serve-smoke`` job enforces:

1. **cold** — every program is submitted once over ``concurrency``
   connections; every response must be a 200 report.
2. **warm replay** — the identical requests again; every body must be
   **byte-identical** to its cold twin (the determinism contract), and
   none may re-execute (cache hits or coalesced joins only).
3. **coalescing burst** — ``duplicates`` identical submissions of one
   *fresh* program, all in flight together; the server's ``executed``
   counter must rise by exactly 1 and all bodies must be identical.
4. **durability restart** (when the caller can restart the server, i.e.
   the self-hosted CLI path) — a burst of *async* jobs is submitted and
   the server is stopped **mid-burst**, then a fresh server is started
   on the same cache directory and write-ahead journal
   (:mod:`repro.serve.journal`).  Every job id must still resolve, zero
   jobs may be lost, and each recovered report body must be
   byte-identical to a direct synchronous request for the same
   document.

The emitted ``SERVE_<date>.json`` document carries a ``body_digest`` — a
SHA-256 over every cold response body in request order — so two runs of
the same scenario against the same code can be diffed with one string
compare, byte-for-byte, without shipping the bodies around.
"""

from __future__ import annotations

import asyncio
import hashlib
import time

from repro.fuzz.generator import generate_program
from repro.serve.client import get_stats, http_request, submit_report

#: config presets cycled over the traffic, so one load test exercises
#: BASELINE, all three BITSPEC heuristics and the THUMB backend
TRAFFIC_PRESETS = (
    "bitspec-max",
    "baseline",
    "bitspec-avg",
    "thumb",
    "bitspec-min",
)


def build_traffic(
    programs: int,
    seed: int = 0,
    *,
    tenants: int = 4,
    pareto: bool = False,
) -> list:
    """The deterministic request list for (``programs``, ``seed``)."""
    docs = []
    for i in range(programs):
        prog = generate_program(seed + i)
        docs.append(
            {
                "tenant": f"load-{i % tenants}",
                "source": prog.source,
                "config": {"preset": TRAFFIC_PRESETS[i % len(TRAFFIC_PRESETS)]},
                "inputs": {
                    "profile": prog.inputs_profile,
                    "run": prog.inputs_run,
                },
                "report": {
                    "attribution": i % 2 == 0,
                    "pareto": pareto and i % 10 == 0,
                },
            }
        )
    return docs


async def _submit_all(host, port, docs, concurrency, progress=None):
    """Submit every doc with bounded concurrency; keeps request order."""
    semaphore = asyncio.Semaphore(concurrency)
    results = [None] * len(docs)

    async def _one(index, doc):
        async with semaphore:
            response = await submit_report(host, port, doc)
        results[index] = response
        if progress is not None:
            progress(index, response)

    await asyncio.gather(*(_one(i, d) for i, d in enumerate(docs)))
    return results


async def run_load_test(
    host: str,
    port: int,
    *,
    programs: int = 200,
    seed: int = 0,
    concurrency: int = 16,
    duplicates: int = 16,
    pareto: bool = False,
    restart=None,
    restart_jobs: int = 8,
    progress=None,
) -> dict:
    """Drive a running server through the phases; returns the report.

    The returned document's ``ok`` field is the overall verdict; the CLI
    turns it into the exit code.  ``restart``, when given, is an async
    callable that stops the server and starts a fresh one on the same
    cache directory and journal, returning the new ``(host, port)`` —
    it enables the durability restart phase (impossible against an
    external ``--url`` server, so it defaults to off).
    """
    docs = build_traffic(programs, seed, pareto=pareto)
    report: dict = {
        "schema": 1,
        "programs": programs,
        "seed": seed,
        "concurrency": concurrency,
        "duplicates": duplicates,
        "presets": list(TRAFFIC_PRESETS),
        "failures": [],
    }

    def _note(phase, index, response):
        if progress is not None:
            progress(phase, index, response)

    # -- phase 1: cold ---------------------------------------------------------
    started = time.perf_counter()
    cold = await _submit_all(
        host, port, docs, concurrency, progress=lambda i, r: _note("cold", i, r)
    )
    cold_seconds = time.perf_counter() - started
    cold_failures = [
        {"phase": "cold", "index": i, "status": r.status, "body": r.json()}
        for i, r in enumerate(cold)
        if r.status != 200
    ]
    report["failures"].extend(cold_failures[:10])
    digest = hashlib.sha256()
    for response in cold:
        digest.update(response.body)
    report["cold"] = {
        "requests": len(cold),
        "failed": len(cold_failures),
        "seconds": round(cold_seconds, 3),
    }
    report["body_digest"] = digest.hexdigest()

    # -- phase 2: warm replay (byte-identity gate) -----------------------------
    started = time.perf_counter()
    stats_before = await get_stats(host, port)
    warm = await _submit_all(
        host, port, docs, concurrency, progress=lambda i, r: _note("warm", i, r)
    )
    stats_after = await get_stats(host, port)
    warm_seconds = time.perf_counter() - started
    mismatches = [
        i
        for i, (a, b) in enumerate(zip(cold, warm))
        if a.body != b.body or b.status != a.status
    ]
    report["warm"] = {
        "requests": len(warm),
        "seconds": round(warm_seconds, 3),
        "byte_mismatches": len(mismatches),
        "mismatched_indices": mismatches[:10],
        "re_executed": stats_after["executed"] - stats_before["executed"],
    }

    # -- phase 3: coalescing burst --------------------------------------------
    burst_prog = generate_program(seed + programs + 1_000_003)
    burst_doc = {
        "tenant": "burst",
        "source": burst_prog.source,
        "config": {"preset": "bitspec-max"},
        "inputs": {
            "profile": burst_prog.inputs_profile,
            "run": burst_prog.inputs_run,
        },
        "report": {"attribution": True, "pareto": False},
    }
    stats_before = await get_stats(host, port)
    burst = await _submit_all(
        host,
        port,
        [burst_doc] * duplicates,
        duplicates,
        progress=lambda i, r: _note("burst", i, r),
    )
    stats_after = await get_stats(host, port)
    bodies = {r.body for r in burst}
    report["coalescing"] = {
        "duplicates": duplicates,
        "executed_delta": stats_after["executed"] - stats_before["executed"],
        "coalesced_delta": stats_after["coalesced"] - stats_before["coalesced"],
        "distinct_bodies": len(bodies),
        "statuses": sorted({r.status for r in burst}),
    }

    report["server_stats"] = stats_after
    report["ok"] = (
        not cold_failures
        and not mismatches
        and report["warm"]["re_executed"] == 0
        # exactly 1 on a cold cache; 0 if a persistent cache dir already
        # holds the burst key — either way, never a duplicate compile
        and report["coalescing"]["executed_delta"] <= 1
        and report["coalescing"]["distinct_bodies"] == 1
        and report["coalescing"]["statuses"] == [200]
    )

    # -- phase 4: durability restart -------------------------------------------
    if restart is not None:
        host, port = await _restart_phase(
            host, port, report,
            seed=seed, programs=programs, restart=restart,
            restart_jobs=restart_jobs, note=_note,
        )
        report["ok"] = bool(
            report["ok"]
            and report["restart"]["lost"] == 0
            and report["restart"]["byte_mismatches"] == 0
            and report["restart"]["jobs"] == report["restart"]["submitted"]
        )
    return report


async def _restart_phase(
    host, port, report, *, seed, programs, restart, restart_jobs, note
):
    """Submit async jobs, kill the server mid-burst, recover, verify."""
    docs = []
    for i in range(restart_jobs):
        prog = generate_program(seed + programs + 2_000_003 + i)
        docs.append(
            {
                "tenant": "restart",
                "source": prog.source,
                "config": {
                    "preset": TRAFFIC_PRESETS[i % len(TRAFFIC_PRESETS)]
                },
                "inputs": {
                    "profile": prog.inputs_profile,
                    "run": prog.inputs_run,
                },
                "report": {"attribution": True, "pareto": False},
            }
        )
    job_ids = []
    for i, doc in enumerate(docs):
        response = await http_request(host, port, "POST", "/v1/jobs", doc)
        note("restart", i, response)
        if response.status == 202:
            job_ids.append(response.json()["job_id"])

    # mid-burst: the jobs above are (at best) still executing
    host, port = await restart()

    lost, resolved = [], {}
    deadline = time.perf_counter() + 120.0
    for job_id in job_ids:
        body = None
        while time.perf_counter() < deadline:
            response = await http_request(
                host, port, "GET", f"/v1/jobs/{job_id}/report"
            )
            if response.status == 200:
                body = response.body
                break
            if response.status == 404:
                break  # the job was forgotten: lost work
            await asyncio.sleep(0.05)
        if body is None:
            lost.append(job_id)
        else:
            resolved[job_id] = body

    # byte-identity: each recovered report must equal a direct request's
    mismatches = []
    for doc, job_id in zip(docs, job_ids):
        if job_id not in resolved:
            continue
        direct = await submit_report(host, port, doc)
        if direct.body != resolved[job_id]:
            mismatches.append(job_id)

    stats = await get_stats(host, port)
    report["restart"] = {
        "submitted": len(docs),
        "jobs": len(job_ids),
        "lost": len(lost),
        "lost_ids": lost[:10],
        "byte_mismatches": len(mismatches),
        "mismatched_ids": mismatches[:10],
        "recovered_jobs": stats.get("recovered_jobs", 0),
        "requeued_jobs": stats.get("requeued_jobs", 0),
    }
    return host, port
