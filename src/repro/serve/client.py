"""Minimal asyncio HTTP/1.1 client for the serve API (stdlib only).

Just enough protocol for this repo's server and tests: one request per
connection (the server sends ``Connection: close``), JSON bodies,
response returned as ``(status, headers, body_bytes)``.  The raw body
bytes are first-class because the whole point of the service is a
byte-identity contract — parsing to a dict and re-serializing would hide
exactly the class of bug the load test exists to catch.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Optional


@dataclass
class Response:
    """One HTTP exchange, body kept as raw bytes."""

    status: int
    headers: dict
    body: bytes

    def json(self):
        return json.loads(self.body.decode())


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    doc=None,
    *,
    timeout: float = 300.0,
) -> Response:
    """One request/response round trip on a fresh connection."""
    payload = b""
    if doc is not None:
        payload = json.dumps(doc, sort_keys=True).encode()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

        async def _read():
            status_line = (await reader.readline()).decode("latin-1")
            parts = status_line.split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(f"malformed status line: {status_line!r}")
            status = int(parts[1])
            headers: dict = {}
            while True:
                line = (await reader.readline()).decode("latin-1")
                if line in ("\r\n", "\n", ""):
                    break
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            length = headers.get("content-length")
            if length is not None:
                body = await reader.readexactly(int(length))
            else:
                body = await reader.read()
            return Response(status=status, headers=headers, body=body)

        return await asyncio.wait_for(_read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def submit_report(
    host: str, port: int, doc: dict, *, timeout: float = 300.0
) -> Response:
    """POST a request document to ``/v1/reports``."""
    return await http_request(
        host, port, "POST", "/v1/reports", doc, timeout=timeout
    )


async def get_stats(host: str, port: int) -> dict:
    return (await http_request(host, port, "GET", "/v1/stats")).json()


def request_sync(
    host: str,
    port: int,
    method: str,
    path: str,
    doc=None,
    *,
    timeout: float = 300.0,
) -> Response:
    """Blocking convenience wrapper for CLI one-shots."""
    return asyncio.run(
        http_request(host, port, method, path, doc, timeout=timeout)
    )


def parse_url(url: str) -> tuple:
    """``http://host:port`` → ``(host, port)``; scheme optional."""
    from urllib.parse import urlsplit

    if "//" not in url:
        url = "http://" + url
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"only http:// URLs are supported, got {url!r}")
    host: Optional[str] = parts.hostname
    if not host:
        raise ValueError(f"no host in {url!r}")
    return host, parts.port or 80
