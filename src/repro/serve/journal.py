"""Write-ahead job journal: async jobs survive a server crash.

The server's job table (`ReproServer._jobs`) is in-memory; before this
module, a restart silently forgot every async job — pending work was
lost and completed-but-uncacheable outcomes vanished.  The journal
makes the job lifecycle durable with the classic write-ahead rule:
**append and fsync the intent before acting on it**.

One JSON object per line, three record kinds:

* ``submit`` — a new execution was admitted; carries the canonical
  request document so recovery can re-enqueue it verbatim;
* ``start`` — the worker pool began executing the job;
* ``complete`` — the job finished; cacheable envelopes live in the
  content-addressed report cache (the journal stores only the flag —
  replay is byte-identical because the cache body is), while
  uncacheable outcomes (timeouts, worker crashes) ride inline so the
  job id still resolves after a restart.

Recovery (:func:`scan`) is tolerant by construction: a torn final line
— the signature of a crash mid-append — is dropped and counted, never
raised; interior garbage is skipped the same way.  The scan folds the
surviving records into per-key job states (``submitted`` < ``started``
< ``done``); :meth:`repro.serve.server.ReproServer.start` re-enqueues
every non-done job and re-registers every done one.

Determinism note: re-executing a re-enqueued job yields the
byte-identical report body — simulations are pure functions of the
request — so crash recovery composes with the serve determinism
contract instead of weakening it (docs/serve.md, docs/resilience.md).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: journal line schema version
JOURNAL_FORMAT = 1

#: record kinds, in lifecycle order
RECORD_KINDS = ("submit", "start", "complete")

_RANK = {"submitted": 0, "started": 1, "done": 2}


def record_digest(record: dict) -> str:
    """Checksum appended to every record (over the sha-less canonical
    form) — a bit-flipped record is dropped by :func:`scan`, never
    replayed; without it a damaged inline envelope would be served
    verbatim."""
    blob = json.dumps(record, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class ScanResult:
    """What a journal scan recovered (and what it had to drop)."""

    #: key → {"state", "tenant", "request", "envelope"}
    jobs: dict = field(default_factory=dict)
    records: int = 0
    #: unparseable final line — a crash mid-append; recovered by truncation
    torn_tail: bool = False
    #: interior lines dropped (bad JSON / unknown kind / wrong format)
    dropped: int = 0


def scan(path) -> ScanResult:
    """Fold a journal into per-key job states; never raises on damage."""
    result = ScanResult()
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return result
    lines = raw.split(b"\n")
    # a well-formed journal ends with a newline, so the final split
    # element is empty; anything else is a torn tail
    if lines and lines[-1] != b"":
        result.torn_tail = True
    lines = lines[:-1] if lines else []
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if (
                not isinstance(record, dict)
                or record.get("format") != JOURNAL_FORMAT
                or record.get("rec") not in RECORD_KINDS
                or not isinstance(record.get("key"), str)
                or record.pop("sha", None) != record_digest(record)
            ):
                raise ValueError("malformed journal record")
        except (ValueError, TypeError):
            result.dropped += 1
            continue
        result.records += 1
        key = record["key"]
        job = result.jobs.setdefault(
            key,
            {"state": "submitted", "tenant": None, "request": None,
             "envelope": None},
        )
        kind = record["rec"]
        if kind == "submit":
            job["tenant"] = record.get("tenant")
            job["request"] = record.get("request")
        elif kind == "start":
            if _RANK[job["state"]] < _RANK["started"]:
                job["state"] = "started"
        else:  # complete
            job["state"] = "done"
            if record.get("envelope") is not None:
                job["envelope"] = record["envelope"]
    return result


class JobJournal:
    """Append-fsync job journal; one instance owns the file handle."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")

    def _append(self, record: dict) -> None:
        record = dict(record, sha=record_digest(record))
        line = json.dumps(record, sort_keys=True).encode() + b"\n"
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def submit(self, key: str, tenant: str, request: dict) -> None:
        """Record an admitted execution *before* it is scheduled."""
        self._append(
            {
                "format": JOURNAL_FORMAT,
                "rec": "submit",
                "key": key,
                "tenant": tenant,
                "request": request,
            }
        )

    def start(self, key: str) -> None:
        self._append({"format": JOURNAL_FORMAT, "rec": "start", "key": key})

    def complete(
        self, key: str, *, cacheable: bool, envelope: Optional[dict] = None
    ) -> None:
        """Record an outcome; ``envelope`` rides inline only when the
        content-addressed cache cannot serve it (uncacheable)."""
        self._append(
            {
                "format": JOURNAL_FORMAT,
                "rec": "complete",
                "key": key,
                "cacheable": cacheable,
                "envelope": None if cacheable else envelope,
            }
        )

    def truncate_to_valid(self) -> bool:
        """Chop a torn tail off the file in place; True if trimmed.

        Called on startup before appending: a crash mid-append leaves a
        partial final line that would corrupt the next record appended
        after it.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return False
        if not raw or raw.endswith(b"\n"):
            return False
        keep = raw.rfind(b"\n") + 1  # 0 when no newline survives
        self._handle.close()
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")
        return True

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
