"""``python -m repro.serve`` — serve / submit / load-test.

Examples::

    # start the service on port 8437 with 4 workers and a shared cache
    python -m repro.serve serve --port 8437 --workers 4 --cache-dir .servecache

    # submit one program and pretty-print the deterministic report
    python -m repro.serve submit --url http://127.0.0.1:8437 \\
        --source program.c --preset bitspec-max --tenant alice

    # self-hosted fuzz-driven load test: 200 distinct programs, then the
    # byte-identity replay and the coalescing burst; SERVE_<date>.json
    python -m repro.serve load-test --programs 200 --concurrency 16

Exit codes: ``serve`` exits 0 on clean shutdown; ``submit`` exits 0 iff
the response is 2xx; ``load-test`` exits 0 iff every gate passed.
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import json
import sys
import tempfile
from pathlib import Path

from repro.serve.client import parse_url, request_sync
from repro.serve.server import ReproServer, ServeConfig


def _cmd_serve(args) -> int:
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        timeout=args.timeout or None,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
        max_queue=args.max_queue,
        quota_capacity=args.quota_capacity,
        quota_refill=args.quota_refill,
        journal_path=str(args.journal) if args.journal else None,
    )

    async def _run():
        server = ReproServer(config)
        await server.start()
        print(
            f"repro.serve listening on http://{config.host}:{server.port} "
            f"({config.workers} worker(s), cache="
            f"{config.cache_dir or 'disabled'}, journal="
            f"{config.journal_path or 'disabled'})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0


def _cmd_submit(args) -> int:
    host, port = parse_url(args.url)
    if args.request:
        doc = json.loads(Path(args.request).read_text())
    else:
        if not args.source:
            print("submit: need --source FILE or --request FILE", file=sys.stderr)
            return 2
        source = (
            sys.stdin.read()
            if args.source == "-"
            else Path(args.source).read_text()
        )
        doc = {
            "tenant": args.tenant,
            "source": source,
            "config": {"preset": args.preset},
            "report": {
                "attribution": not args.no_attribution,
                "pareto": not args.no_pareto,
            },
        }
    path = "/v1/jobs" if args.asynchronous else "/v1/reports"
    response = request_sync(host, port, "POST", path, doc, timeout=args.timeout)
    sys.stdout.write(response.body.decode())
    source_header = response.headers.get("x-repro-source")
    if source_header:
        print(f"# X-Repro-Source: {source_header}", file=sys.stderr)
    return 0 if response.status < 300 else 1


def _cmd_load_test(args) -> int:
    from repro.serve.loadtest import run_load_test

    def progress(phase, index, response):
        if args.quiet:
            return
        tag = response.headers.get("x-repro-source", "?")
        print(f"[{phase} {index}] {response.status} {tag}", flush=True)

    async def _run() -> dict:
        if args.url:
            host, port = parse_url(args.url)
            return await run_load_test(
                host,
                port,
                programs=args.programs,
                seed=args.seed,
                concurrency=args.concurrency,
                duplicates=args.duplicates,
                pareto=args.pareto,
                progress=progress,
            )
        cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="servecache-")
        config = ServeConfig(
            host="127.0.0.1",
            port=0,
            workers=args.workers,
            timeout=args.timeout or None,
            cache_dir=str(cache_dir),
            max_queue=max(args.concurrency, args.duplicates) + 4,
            quota_capacity=0.0,  # throughput run: quotas off
            journal_path=str(Path(cache_dir) / "jobs.journal"),
        )
        state = {"server": ReproServer(config)}
        await state["server"].start()

        async def _restart():
            # the durability phase: drop the server mid-burst, then come
            # back up on the same cache dir + journal
            await state["server"].stop()
            state["server"] = ReproServer(config)
            await state["server"].start()
            return "127.0.0.1", state["server"].port

        try:
            return await run_load_test(
                "127.0.0.1",
                state["server"].port,
                programs=args.programs,
                seed=args.seed,
                concurrency=args.concurrency,
                duplicates=args.duplicates,
                pareto=args.pareto,
                restart=None if args.no_restart else _restart,
                progress=progress,
            )
        finally:
            await state["server"].stop()

    report = asyncio.run(_run())
    output = args.json or Path(
        f"SERVE_{datetime.date.today().isoformat()}.json"
    )
    Path(output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    warm = report["warm"]
    coalescing = report["coalescing"]
    print(
        f"cold: {report['cold']['requests']} requests, "
        f"{report['cold']['failed']} failed, {report['cold']['seconds']}s; "
        f"warm: {warm['byte_mismatches']} byte mismatches, "
        f"{warm['re_executed']} re-executions, {warm['seconds']}s; "
        f"burst: {coalescing['executed_delta']} execution(s) for "
        f"{coalescing['duplicates']} identical submissions",
        flush=True,
    )
    if "restart" in report:
        restart = report["restart"]
        print(
            f"restart: {restart['jobs']} async jobs through a mid-burst "
            f"restart, {restart['lost']} lost, "
            f"{restart['byte_mismatches']} byte mismatches "
            f"({restart['requeued_jobs']} requeued, "
            f"{restart['recovered_jobs']} recovered)",
            flush=True,
        )
    print(f"body digest {report['body_digest']}", flush=True)
    print(f"wrote {output}", flush=True)
    print("PASS" if report["ok"] else "FAIL", flush=True)
    return 0 if report["ok"] else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async multi-tenant compile-and-simulate service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8437)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--timeout", type=float, default=120.0,
                       help="per-job worker timeout in seconds (0 disables)")
    serve.add_argument("--cache-dir", type=Path, default=Path(".servecache"),
                       help="content-addressed report cache (shared tier)")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="in-flight execution cap before 503 queue-full")
    serve.add_argument("--quota-capacity", type=float, default=60.0,
                       help="per-tenant token-bucket size (0 disables quotas)")
    serve.add_argument("--quota-refill", type=float, default=20.0,
                       help="tokens per second per tenant")
    serve.add_argument("--journal", type=Path, default=None,
                       help="write-ahead job journal file: async jobs "
                            "survive a restart (default: disabled)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit one request document")
    submit.add_argument("--url", default="http://127.0.0.1:8437")
    submit.add_argument("--source", default=None,
                        help="MiniC source file ('-' = stdin)")
    submit.add_argument("--request", default=None,
                        help="full JSON request document file (overrides --source)")
    submit.add_argument("--preset", default="bitspec-max")
    submit.add_argument("--tenant", default="cli")
    submit.add_argument("--no-attribution", action="store_true")
    submit.add_argument("--no-pareto", action="store_true")
    submit.add_argument("--async", dest="asynchronous", action="store_true",
                        help="POST /v1/jobs and print the job ticket")
    submit.add_argument("--timeout", type=float, default=300.0)
    submit.set_defaults(func=_cmd_submit)

    load = sub.add_parser(
        "load-test",
        help="fuzz-driven load test + zero-nondeterminism gate",
    )
    load.add_argument("--url", default=None,
                      help="drive an already-running server (default: self-host)")
    load.add_argument("--programs", type=int, default=200,
                      help="distinct fuzz programs (default: 200)")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--concurrency", type=int, default=16)
    load.add_argument("--duplicates", type=int, default=16,
                      help="identical concurrent submissions in the burst phase")
    load.add_argument("--pareto", action="store_true",
                      help="enable the Pareto section on every 10th request")
    load.add_argument("--workers", type=int, default=2,
                      help="self-hosted server worker processes")
    load.add_argument("--timeout", type=float, default=120.0)
    load.add_argument("--cache-dir", type=Path, default=None,
                      help="self-hosted cache dir (default: fresh temp dir)")
    load.add_argument("--json", type=Path, default=None,
                      help="report path (default: SERVE_<date>.json)")
    load.add_argument("--no-restart", action="store_true",
                      help="skip the mid-burst durability restart phase")
    load.add_argument("--quiet", action="store_true")
    load.set_defaults(func=_cmd_load_test)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
