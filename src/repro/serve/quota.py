"""Per-tenant token-bucket quotas.

Every job-submitting request charges one token from its tenant's bucket
*at ingress* — before cache lookup or coalescing — so a tenant replaying
cached work is rate-limited exactly like one burning CPU (the bucket
protects the front door, the queue-depth backpressure protects the
workers).  Buckets refill continuously at ``refill_per_second`` up to
``capacity``; an empty bucket yields a 429 with the precise
``retry_after_seconds`` until one token exists again.

The clock is injectable (``time.monotonic`` by default) so the tests can
drive refill deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class QuotaDecision:
    """The outcome of one charge attempt."""

    allowed: bool
    #: seconds until the next token exists (0.0 when allowed)
    retry_after: float = 0.0


class TokenBucket:
    """The classic continuous-refill token bucket."""

    def __init__(self, capacity: float, refill_per_second: float, clock=None) -> None:
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock or time.monotonic
        self._tokens = self.capacity
        self._last = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(now - self._last, 0.0)
        self._last = now
        self._tokens = min(
            self.capacity, self._tokens + elapsed * self.refill_per_second
        )

    def charge(self, tokens: float = 1.0) -> QuotaDecision:
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return QuotaDecision(allowed=True)
        if self.refill_per_second <= 0:
            return QuotaDecision(allowed=False, retry_after=float("inf"))
        missing = tokens - self._tokens
        return QuotaDecision(
            allowed=False,
            retry_after=round(missing / self.refill_per_second, 3),
        )

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class QuotaRegistry:
    """One :class:`TokenBucket` per tenant, created on first sight.

    ``capacity <= 0`` disables quotas entirely (every charge allowed) —
    the load-test harness uses that to measure raw throughput.
    """

    def __init__(self, capacity: float, refill_per_second: float, clock=None) -> None:
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock
        self._buckets: dict = {}

    def charge(self, tenant: str, tokens: float = 1.0) -> QuotaDecision:
        if self.capacity <= 0:
            return QuotaDecision(allowed=True)
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.capacity, self.refill_per_second, clock=self._clock
            )
        return bucket.charge(tokens)

    def snapshot(self) -> dict:
        """Per-tenant remaining tokens, for the stats document."""
        return {
            tenant: round(bucket.tokens, 3)
            for tenant, bucket in sorted(self._buckets.items())
        }
