"""BITSPEC reproduction: per-variable bitwidth speculation (ASPLOS 2025).

Top-level convenience imports::

    from repro import compile_source, Interpreter

Subpackages:

* ``repro.ir``        — typed SSA IR (LLVM-IR analog)
* ``repro.sir``       — speculative regions (SIR)
* ``repro.frontend``  — MiniC front-end
* ``repro.interp``    — functional simulator / profiling engine
* ``repro.analysis``  — static bitwidth analyses
* ``repro.profiler``  — profile-guided bitwidth selection
* ``repro.passes``    — expander, squeezer, speculative optimizations
* ``repro.backend``   — SMIR, instruction selection, slice register allocation
* ``repro.arch``      — microarchitecture + energy model (+ DTS)
* ``repro.workloads`` — MiBench-like benchmark programs
* ``repro.eval``      — experiment harness reproducing the paper's figures
"""

__version__ = "1.0.0"

from repro.frontend import compile_source
from repro.interp import Interpreter

__all__ = ["Interpreter", "compile_source", "__version__"]
