"""Canonical slice-width arithmetic for the BITSPEC register file and ALU.

Single source of truth for every mask/width table that used to be
duplicated across :mod:`repro.arch.machine`, :mod:`repro.arch.predecode`
and the squeezer path.  The sweepable speculative slice width (§3.5 and
the sensitivity axes of the paper) is expressed in *bits*; the register
file remains byte-granular, so a 4-bit slice still occupies one byte cell
and is accounted at byte width for register-file energy.

``32`` means speculation is off — no value is narrower than a full
register, so the squeezer has nothing to do and no ``bs_*`` op is ever
emitted.
"""

from __future__ import annotations

#: Sweepable speculative slice widths in bits; 32 = speculation off.
SLICE_WIDTHS = (4, 8, 16, 32)

#: The default (the paper's only hardware point): 8-bit slices.
DEFAULT_SLICE_WIDTH = 8

#: Byte-size -> value mask for register-file slice accesses.  This is the
#: storage view: reads and writes mask at byte granularity regardless of
#: the speculative width (a 4-bit slice lives in a byte cell).
BYTE_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}


def validate_slice_width(bits: int) -> int:
    """Check ``bits`` is a supported speculative slice width."""
    if bits not in SLICE_WIDTHS:
        raise ValueError(
            f"unsupported slice width {bits}; expected one of {SLICE_WIDTHS}"
        )
    return bits


def slice_mask(bits: int) -> int:
    """Value mask of a ``bits``-wide slice (the misspeculation limit)."""
    return (1 << bits) - 1


def slice_bytes(bits: int) -> int:
    """Register-file storage footprint of a ``bits``-wide slice, in bytes.

    Sub-byte slices round up to one byte cell; 32-bit "slices" are whole
    registers.
    """
    return max(1, (bits + 7) // 8)


def truncate(value: int, bits: int) -> int:
    """The low ``bits`` of ``value`` — the unsigned bit pattern of a
    ``bits``-wide slice (what a narrow register-file write stores)."""
    return value & ((1 << bits) - 1)


def zero_extend(value: int, bits: int) -> int:
    """A ``bits``-wide pattern widened with zero bits (``uxt``).

    Identical to :func:`truncate` on well-formed inputs; spelled separately
    so call sites say which direction the conversion goes.
    """
    return value & ((1 << bits) - 1)


def sign_extend(value: int, bits: int, to_bits: int = 32) -> int:
    """A ``bits``-wide pattern sign-extended into a ``to_bits`` pattern.

    This is the architectural ``sxt``: replicate bit ``bits-1`` upward,
    then re-wrap to the destination width.  Kept here (next to the mask
    tables) as the single source of truth shared by the concrete machine
    engines and the symbolic executor of :mod:`repro.verify`, so the two
    implementations cannot drift.
    """
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & ((1 << to_bits) - 1)
