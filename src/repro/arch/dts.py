"""Dynamic timing slack (DTS) — the time-squeezing model for RQ8.

Time squeezing [Fan et al., ISCA'19] lets the compiler estimate, per
instruction, how much of the clock period the critical path actually uses;
a programmable clock/voltage system reclaims the remaining slack by scaling
the supply voltage down until the path just fits, with RazorII-style error
detection recovering the rare violations.

Here each dynamic-instruction class carries a critical-path fraction; the
supply for that instruction is the voltage whose alpha-power-law delay
[Sakurai & Newton] consumes the whole period, and its energy scales with
V² [Mudge].  BITSPEC composes naturally: 8-bit slice ALU ops have a much
shorter carry chain, hence more slack — which is exactly the paper's
observation that DTS+BITSPEC ≈ DTS × BITSPEC, with headroom beyond.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.energy import EnergyBreakdown, compute_energy

#: critical-path fraction of the clock period per instruction class, as the
#: time-squeezing *compiler* estimates it.  The production DTS estimator is
#: bitwidth-blind: an 8-bit slice op is budgeted like a full-width ALU op
#: (the paper's RQ8 observation that DTS+BITSPEC lands at the product of the
#: two, with headroom left for bitwidth-aware estimation as future work).
SLACK_PROFILE = {
    "alu32": 0.85,  # full 32-bit carry chain
    "alu8": 0.85,  # estimated as a full-width op (bitwidth-blind compiler)
    "mul": 1.00,
    "div": 1.00,
    "move": 0.62,
    "mem": 0.92,  # AGU + SRAM access path
    "branch": 0.68,
}

#: what a bitwidth-*aware* estimator could claim for slice ops: the 8-bit
#: carry chain really is ~1/4 of the ALU critical path (§3.5).  Used by the
#: future-work ablation bench.
BITWIDTH_AWARE_SLACK = dict(SLACK_PROFILE, alu8=0.58)


@dataclass
class DTSModel:
    """Alpha-power-law voltage/energy scaling with a safety margin."""

    vdd_nominal: float = 1.2
    vt: float = 0.35
    alpha: float = 1.3
    #: extra period fraction kept as Razor safety margin
    margin: float = 0.08
    #: fraction of instructions triggering RazorII replay
    razor_error_rate: float = 0.002
    #: cycles burned per replay
    razor_replay_cost: float = 11.0
    slack_profile: dict = field(default_factory=lambda: dict(SLACK_PROFILE))

    @classmethod
    def bitwidth_aware(cls, **kw) -> "DTSModel":
        """Future-work variant: the estimator exploits slice carry chains."""
        return cls(slack_profile=dict(BITWIDTH_AWARE_SLACK), **kw)

    def _delay(self, vdd: float) -> float:
        return vdd / (vdd - self.vt) ** self.alpha

    def voltage_for_delay_scale(self, scale: float) -> float:
        """Lowest V whose delay is ≤ ``scale`` × nominal delay (bisection)."""
        nominal = self._delay(self.vdd_nominal)
        lo, hi = self.vt + 0.05, self.vdd_nominal
        if self._delay(lo) / nominal <= scale:
            return lo
        for _ in range(48):
            mid = (lo + hi) / 2
            if self._delay(mid) / nominal <= scale:
                hi = mid
            else:
                lo = mid
        return hi

    def energy_factor(self, inst_class: str) -> float:
        """V²/Vnom² for one instruction class (≤ 1)."""
        d = self.slack_profile.get(inst_class, 1.0)
        budget = min(1.0, d + self.margin)
        if budget >= 1.0:
            return 1.0
        vdd = self.voltage_for_delay_scale(1.0 / budget)
        return (vdd / self.vdd_nominal) ** 2

    def scale_for_mix(self, class_counts: dict) -> float:
        """Dynamic-instruction-weighted mean energy factor."""
        total = sum(class_counts.values())
        if total == 0:
            return 1.0
        weighted = sum(
            count * self.energy_factor(name) for name, count in class_counts.items()
        )
        factor = weighted / total
        # RazorII replays: each error re-executes at nominal energy and
        # flushes the pipeline (≈ replay_cost cycles of overhead).
        factor *= 1.0 + self.razor_error_rate * (1.0 + self.razor_replay_cost / 6.0)
        return min(factor, 1.0)

    def apply(self, sim_result) -> EnergyBreakdown:
        """Scaled energy breakdown for a simulation under time squeezing."""
        factor = self.scale_for_mix(sim_result.class_counts)
        scale = {c: factor for c in ("alu", "regfile", "dcache", "icache", "pipeline")}
        return compute_energy(
            sim_result.counters,
            scale=scale,
            slice_bits=getattr(sim_result, "slice_width", 8),
        )
