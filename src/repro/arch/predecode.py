"""Predecoded fast path for the behavioral machine model.

The legacy :meth:`Machine.run` loop re-examines every :class:`MachineInst`
on every dynamic execution: string opcode matching through a ~30-way elif
chain, ``type()`` dispatch per operand, and half a dozen dict/attribute
counter increments per step.  This module predecodes the linked program
*once* into dense tuples — integer opcode ids, resolved operand
descriptors, precomputed masks/shifts — and batches every statically
determined energy/event counter out of the hot loop entirely: the loop
bumps one per-pc execution count, and all static counter contributions
(register-file accesses by width, ALU/move/mul/div op counts, instruction
classes, loads/stores, branch counts, fixed extra cycles) are recovered at
the end as ``Σ per-pc effect × execution count``.  Only genuinely dynamic
events (cache levels, hazard bubbles, taken conditional branches,
misspeculations, and the conditional register writes of ``movcond`` /
``bs_*`` ops) are counted inside the loop.

The predecoded form is cached on the :class:`LinkedProgram` instance, so
repeated simulations of one binary (different inputs, DTS reruns, the
bench matrix) skip predecode.  Event counts are bit-identical to the
legacy path — ``tests/test_machine_predecode.py`` asserts this
differentially over the fuzz seed corpus and real workloads.

Observability rides the same batching (:mod:`repro.obs`): the loop keeps
*per-pc* arrays for the genuinely dynamic events (cache misses, load-use
hazards, misspeculations, taken conditional branches, conditional-move
commits), bumped only when the event actually occurs.  The fold then
*derives* the common-case counters (L1 hits, slice writes of successful
``bs_*`` ops, stall cycles) from ``exec − events`` instead of bumping
them per step — so attribution data is a free by-product of the fast
path, and the hot loop got cheaper, not slower.  When ``Machine.obs`` is
set, the arrays are handed to the caller as a
:class:`repro.obs.events.PcSample` on ``SimResult.obs``.
"""

from __future__ import annotations

from repro.arch.cache import MemoryHierarchy
from repro.arch.widths import BYTE_MASKS as _MASKS, slice_mask
from repro.backend.mir import Imm, Slice
from repro.interp.interpreter import evaluate_icmp
from repro.interp.memory import FlatMemory, STACK_TOP, initialize_globals
from repro.ir.types import int_type

HALT = 0xFFFFFFFF

_DIV_OPS = ("udiv", "sdiv", "urem", "srem")

# -- integer opcode ids -------------------------------------------------------

(
    OP_ALU,
    OP_MOV,
    OP_LOAD,
    OP_STORE,
    OP_BCOND,
    OP_B,
    OP_CMP,
    OP_BS_BIN,
    OP_BS_CMP,
    OP_BS_TRUNC,
    OP_BS_TRUNC_HI,
    OP_BS_LDR,
    OP_EXT,
    OP_MOVCOND,
    OP_MUL,
    OP_UMULL,
    OP_DIV,
    OP_ADDS,
    OP_ADC,
    OP_SUBS,
    OP_SBC,
    OP_ADDSL,
    OP_ORRSL,
    OP_BL,
    OP_BX,
    OP_SUBSPI,
    OP_ADDSPI,
    OP_CMP64HI,
    OP_CMP64LO,
    OP_OUT,
    OP_NOP,
    OP_ERROR,
) = range(32)

_ALU_SUB = {"add": 0, "sub": 1, "and": 2, "orr": 3, "eor": 4, "lsl": 5,
            "lsr": 6, "asr": 7}
_BS_SUB = {"bs_add": 0, "bs_sub": 1, "bs_and": 2, "bs_orr": 3, "bs_eor": 4,
           "bs_lsl": 5, "bs_lsr": 6}

# -- static counter ids (the batched, exec-count-weighted events) -------------

(
    C_RF_R1, C_RF_R2, C_RF_R4,
    C_RF_W1, C_RF_W2, C_RF_W4,
    C_ALU32, C_ALU8, C_MUL, C_DIV, C_MOVE,
    K_ALU32, K_ALU8, K_MUL, K_DIV, K_MOVE, K_MEM, K_BRANCH,
    C_LOADS, C_STORES, C_COPIES, C_SPILL_L, C_SPILL_S,
    C_BRANCHES, C_TAKEN, C_XCYCLES,
) = range(26)

N_STATIC = 26

_RF_R_ID = {1: C_RF_R1, 2: C_RF_R2, 4: C_RF_R4}
_RF_W_ID = {1: C_RF_W1, 2: C_RF_W2, 4: C_RF_W4}
_OPCTR_ID = {"alu32": C_ALU32, "alu8": C_ALU8, "mul": C_MUL, "div": C_DIV,
             "move": C_MOVE}
_CLASS_ID = {"alu32": K_ALU32, "alu8": K_ALU8, "mul": K_MUL, "div": K_DIV,
             "move": K_MOVE, "mem": K_MEM, "branch": K_BRANCH}


class _PredecodeError(Exception):
    """An instruction the fast path cannot represent (re-raised as the
    legacy path's MachineError when — and only when — it executes)."""


def _read_desc(op, eff, narrow_rf):
    """Operand -> (kind, a, b, c); records the static rf-read effect."""
    if type(op) is Slice:
        size = op.size if op.size <= 4 else 4
        width = size if narrow_rf else 4
        eff[_RF_R_ID[width]] = eff.get(_RF_R_ID[width], 0) + 1
        return (1, op.reg, op.offset * 8, _MASKS[size])
    if type(op) is Imm:
        return (0, op.value & 0xFFFFFFFF, 0, 0)
    if op == "sp":
        eff[C_RF_R4] = eff.get(C_RF_R4, 0) + 1
        return (2, 0, 0, 0)
    raise _PredecodeError(f"cannot read operand {op!r}")


def _rf_width(op, narrow_rf):
    size = op.size if op.size <= 4 else 4
    return size if narrow_rf else 4


def _write_desc(op, eff, narrow_rf, count=True):
    """Slice def -> (reg, shift, value-mask, keep-mask)."""
    if type(op) is not Slice:
        raise _PredecodeError(f"cannot write operand {op!r}")
    size = op.size if op.size <= 4 else 4
    if count:
        width = size if narrow_rf else 4
        eff[_RF_W_ID[width]] = eff.get(_RF_W_ID[width], 0) + 1
    shift = op.offset * 8
    vmask = _MASKS[size]
    return (op.reg, shift, vmask, (~(vmask << shift)) & 0xFFFFFFFF)


def _bump(eff, cid, amount=1):
    eff[cid] = eff.get(cid, 0) + amount


def _alu_counters(eff, narrow_rf, width):
    if narrow_rf and width == 1:
        _bump(eff, C_ALU8)
        _bump(eff, K_ALU8)
    else:
        _bump(eff, C_ALU32)
        _bump(eff, K_ALU32)


def _predecode_inst(inst, narrow_rf):
    """One MachineInst -> (args tuple, static-effects dict)."""
    eff: dict = {}
    opcode = inst.opcode
    kind = inst.kind
    if kind:
        if kind == "copy":
            _bump(eff, C_COPIES)
        elif kind == "reload":
            _bump(eff, C_SPILL_L)
        elif kind == "spill":
            _bump(eff, C_SPILL_S)
    hazard = tuple(
        sorted({op.reg for op in inst.uses if type(op) is Slice})
    )

    if opcode == "mov" or opcode == "movi":
        src = _read_desc(inst.uses[0], eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf)
        _bump(eff, C_MOVE)
        _bump(eff, K_MOVE)
        return (OP_MOV, hazard, src, dst), eff
    if opcode in ("ldr", "ldrb", "ldrh"):
        base = _read_desc(inst.uses[0], eff, narrow_rf)
        disp = inst.uses[1].value if len(inst.uses) > 1 else 0
        size = {"ldr": 4, "ldrb": 1, "ldrh": 2}[opcode]
        dst = _write_desc(inst.defs[0], eff, narrow_rf)
        _bump(eff, C_LOADS)
        _bump(eff, K_MEM)
        return (OP_LOAD, hazard, base, disp, size, dst, inst.defs[0].reg), eff
    if opcode in ("str", "strb", "strh"):
        value = _read_desc(inst.uses[0], eff, narrow_rf)
        base = _read_desc(inst.uses[1], eff, narrow_rf)
        disp = inst.uses[2].value if len(inst.uses) > 2 else 0
        size = {"str": 4, "strb": 1, "strh": 2}[opcode]
        _bump(eff, C_STORES)
        _bump(eff, K_MEM)
        return (OP_STORE, hazard, value, base, disp, size), eff
    if opcode in _ALU_SUB:
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf)
        width = inst.width
        mask = _MASKS.get(width, 0xFFFFFFFF)
        _alu_counters(eff, narrow_rf, width)
        # asr needs the signed type of the operation width
        ty = int_type(width * 8) if opcode == "asr" else None
        return (OP_ALU, hazard, _ALU_SUB[opcode], a, b, dst, mask, ty), eff
    if opcode == "bs_ldr":
        addr = _read_desc(inst.uses[0], eff, narrow_rf)
        size = inst.uses[1].value
        dst = _write_desc(inst.defs[0], eff, narrow_rf, count=False)
        wr_width = _rf_width(inst.defs[0], narrow_rf)
        _bump(eff, C_LOADS)
        _bump(eff, C_ALU8)
        _bump(eff, K_ALU8)
        return (OP_BS_LDR, hazard, addr, size, dst, wr_width,
                inst.defs[0].reg), eff
    if opcode in _BS_SUB:
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf, count=False)
        wr_width = _rf_width(inst.defs[0], narrow_rf)
        _bump(eff, C_ALU8)
        _bump(eff, K_ALU8)
        return (OP_BS_BIN, hazard, _BS_SUB[opcode], a, b, dst, wr_width), eff
    if opcode == "bs_cmp":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        _bump(eff, C_ALU8)
        _bump(eff, K_ALU8)
        return (OP_BS_CMP, hazard, a, b, inst.width), eff
    if opcode == "bs_trunc":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf, count=False)
        wr_width = _rf_width(inst.defs[0], narrow_rf)
        _bump(eff, C_ALU8)
        _bump(eff, K_ALU8)
        return (OP_BS_TRUNC, hazard, a, dst, wr_width), eff
    if opcode == "bs_trunc_hi":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        _bump(eff, C_ALU8)
        _bump(eff, K_ALU8)
        return (OP_BS_TRUNC_HI, hazard, a), eff
    if opcode.startswith("bs_"):
        raise _PredecodeError(f"unknown speculative opcode {opcode!r}")
    if opcode == "cmp":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        _bump(eff, C_ALU32)
        _bump(eff, K_ALU32)
        return (OP_CMP, hazard, a, b, inst.width), eff
    if opcode == "cmp64hi":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        _bump(eff, C_ALU32)
        _bump(eff, K_ALU32)
        return (OP_CMP64HI, hazard, a, b), eff
    if opcode == "cmp64lo":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        _bump(eff, C_ALU32)
        _bump(eff, K_ALU32)
        return (OP_CMP64LO, hazard, a, b), eff
    if opcode == "b":
        _bump(eff, C_BRANCHES)
        _bump(eff, C_TAKEN)
        _bump(eff, C_XCYCLES, 2)
        _bump(eff, K_BRANCH)
        return (OP_B, hazard, inst.target), eff
    if opcode == "bcond":
        _bump(eff, C_BRANCHES)
        _bump(eff, K_BRANCH)
        return (OP_BCOND, hazard, inst.cond, inst.target), eff
    if opcode == "movcond":
        src = inst.uses[0]
        src_desc = _read_desc(src, {}, narrow_rf)  # counted dynamically
        src_w = _rf_width(src, narrow_rf) if type(src) is Slice else (
            4 if src == "sp" else 0
        )
        dst = _write_desc(inst.defs[0], eff, narrow_rf, count=False)
        wr_width = _rf_width(inst.defs[0], narrow_rf)
        _bump(eff, C_MOVE)
        _bump(eff, K_MOVE)
        return (OP_MOVCOND, hazard, inst.cond, src_desc, src_w, dst,
                wr_width), eff
    if opcode in ("uxt", "sxt", "trunc"):
        src = inst.uses[0]
        a = _read_desc(src, eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf)
        src_ty = None
        if opcode == "sxt":
            src_bits = (src.size if type(src) is Slice else 4) * 8
            src_ty = int_type(src_bits)
        if narrow_rf and inst.width == 1:
            _bump(eff, C_ALU8)
            _bump(eff, K_ALU8)
        else:
            _bump(eff, C_MOVE)
            _bump(eff, K_MOVE)
        return (OP_EXT, hazard, a, src_ty, dst), eff
    if opcode == "mul":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf)
        mask = _MASKS.get(inst.width, 0xFFFFFFFF)
        _bump(eff, C_MUL)
        _bump(eff, K_MUL)
        _bump(eff, C_XCYCLES, 2)
        return (OP_MUL, hazard, a, b, dst, mask), eff
    if opcode == "umull":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        lo = _write_desc(inst.defs[0], eff, narrow_rf)
        hi = _write_desc(inst.defs[1], eff, narrow_rf)
        _bump(eff, C_MUL)
        _bump(eff, K_MUL)
        _bump(eff, C_XCYCLES, 3)
        return (OP_UMULL, hazard, a, b, lo, hi), eff
    if opcode in _DIV_OPS:
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf)
        ty = int_type(inst.width * 8)
        _bump(eff, C_DIV)
        _bump(eff, K_DIV)
        _bump(eff, C_XCYCLES, 11)
        return (OP_DIV, hazard, _DIV_OPS.index(opcode), a, b, dst, ty), eff
    if opcode in ("adds", "adc", "subs", "sbc"):
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf)
        _bump(eff, C_ALU32)
        _bump(eff, K_ALU32)
        opid = {"adds": OP_ADDS, "adc": OP_ADC, "subs": OP_SUBS,
                "sbc": OP_SBC}[opcode]
        return (opid, hazard, a, b, dst), eff
    if opcode in ("addsl", "orrsl"):
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        b = _read_desc(inst.uses[1], eff, narrow_rf)
        dst = _write_desc(inst.defs[0], eff, narrow_rf)
        shift = inst.uses[2].value
        _bump(eff, C_ALU32)
        _bump(eff, K_ALU32)
        opid = OP_ADDSL if opcode == "addsl" else OP_ORRSL
        return (opid, hazard, a, b, shift, dst), eff
    if opcode == "bl":
        _bump(eff, C_BRANCHES)
        _bump(eff, C_TAKEN)
        _bump(eff, C_XCYCLES, 2)
        _bump(eff, K_BRANCH)
        return (OP_BL, hazard, inst.target), eff
    if opcode == "bx":
        _bump(eff, C_BRANCHES)
        _bump(eff, C_TAKEN)
        _bump(eff, C_XCYCLES, 2)
        _bump(eff, K_BRANCH)
        return (OP_BX, hazard), eff
    if opcode == "subspi" or opcode == "addspi":
        _bump(eff, C_ALU32)
        _bump(eff, K_ALU32)
        opid = OP_SUBSPI if opcode == "subspi" else OP_ADDSPI
        return (opid, hazard, inst.uses[0].value), eff
    if opcode == "out":
        a = _read_desc(inst.uses[0], eff, narrow_rf)
        _bump(eff, C_MOVE)
        _bump(eff, K_MOVE)
        return (OP_OUT, hazard, a), eff
    if opcode == "nop" or opcode == "mode":
        _bump(eff, K_MOVE)
        return (OP_NOP, hazard), eff
    raise _PredecodeError(f"unknown opcode {opcode!r}")


def predecode(linked, narrow_rf: bool):
    """Predecode a linked program; cached on the LinkedProgram instance.

    Returns ``(code, effects)``: per-pc argument tuples and per-pc static
    counter effects (tuples of ``(counter_id, amount)``).
    """
    cache = getattr(linked, "_predecode_cache", None)
    if cache is None:
        cache = {}
        linked._predecode_cache = cache
    cached = cache.get(narrow_rf)
    if cached is not None:
        return cached
    # Mixed-world binaries: instructions owned by functions that fell back
    # to BASELINE codegen use full-width register-file accounting even when
    # the image as a whole is ARM_BS.  The fallback set is fixed per
    # LinkedProgram instance, so ``narrow_rf`` alone still keys the cache.
    fallback = getattr(linked, "fallback_functions", None) or None
    owner = linked.owner if (fallback and narrow_rf) else None
    code = []
    effects = []
    for index, inst in enumerate(linked.insts):
        inst_narrow = narrow_rf
        if owner is not None and owner[index] in fallback:
            inst_narrow = False
        try:
            args, eff = _predecode_inst(inst, inst_narrow)
        except _PredecodeError as exc:
            # Mirror the legacy path: the error is raised only if the
            # instruction is actually executed.
            args, eff = (OP_ERROR, (), str(exc), inst.opcode), {}
        code.append(args)
        effects.append(tuple(sorted(eff.items())))
    cache[narrow_rf] = (code, effects)
    return cache[narrow_rf]


def run_fast(machine, checkpoint_at=None, resume_from=None) -> "SimResult":
    """Execute a linked program on the predecoded fast path.

    Produces a :class:`repro.arch.machine.SimResult` with event counts
    bit-identical to :meth:`Machine._run_legacy`.

    ``checkpoint_at=N`` returns a
    :class:`repro.arch.checkpoint.Snapshot` at the first
    instruction-count boundary ``>= N`` (a SimResult when the program
    halts first); ``resume_from`` restores one.  The fast path's
    in-flight state is the per-pc event arrays, captured wholesale —
    the fold at halt then sees exactly what an uninterrupted run would
    have accumulated, so resume is bit-identical by construction.
    """
    from repro.arch.machine import MachineError, SimResult

    linked = machine.linked
    narrow_rf = machine.narrow_rf
    code, effects = predecode(linked, narrow_rf)
    n_insts = len(code)
    delta = linked.delta
    inst_bytes = linked.inst_bytes
    spec_mask = slice_mask(machine.slice_width)

    output: list = []

    hierarchy = MemoryHierarchy(machine.geometry)
    fetch = hierarchy.fetch
    data_access = hierarchy.data_access

    memory = FlatMemory()
    initialize_globals(memory, machine.module, linked.global_addresses)
    mem_load = memory.load
    mem_store = memory.store

    regs = [0] * 16
    regs[13] = STACK_TOP
    regs[14] = HALT
    cmp_state = (0, 0, 4)
    carry = 0

    exec_counts = [0] * n_insts

    pc = linked.entry_index
    steps = 0
    limit = machine.step_limit
    fx = machine.faults
    # Dynamic events, recorded per pc and only when they occur.  The
    # common case (L1 hit, no hazard, no misspeculation, branch not
    # taken) touches none of these; everything an aggregate counter or
    # :mod:`repro.obs` needs is derived from ``exec − events`` at fold
    # time.  This is also what keeps obs overhead ~zero: enabling it
    # adds no work to the loop at all.
    last_load_reg = -1
    ic_l2_pc = [0] * n_insts  # fetch hit L2
    ic_mem_pc = [0] * n_insts  # fetch went to DRAM
    d_l2_pc = [0] * n_insts  # data access hit L2 (loads and stores)
    d_mem_pc = [0] * n_insts  # data access went to DRAM
    hazard_pc = [0] * n_insts  # load-use bubble charged to the consumer
    misspec_pc = [0] * n_insts  # bs_* op overflowed its slice
    taken_pc = [0] * n_insts  # conditional branch taken
    movcond_pc = [0] * n_insts  # movcond condition was true (committed)

    if resume_from is not None:
        from repro.arch.checkpoint import restore_hierarchy

        snap = resume_from
        snap.check_resume(machine, "fast")
        hierarchy = restore_hierarchy(snap.hierarchy, machine.geometry)
        fetch = hierarchy.fetch
        data_access = hierarchy.data_access
        memory.data[:] = snap.memory_data
        regs[:] = snap.regs
        cmp_state = tuple(snap.cmp_state)
        carry = snap.carry
        last_load_reg = snap.last_load_reg
        pc = snap.pc
        steps = snap.instructions
        output[:] = snap.output
        state = snap.state
        exec_counts[:] = state["exec_counts"]
        ic_l2_pc[:] = state["ic_l2_pc"]
        ic_mem_pc[:] = state["ic_mem_pc"]
        d_l2_pc[:] = state["d_l2_pc"]
        d_mem_pc[:] = state["d_mem_pc"]
        hazard_pc[:] = state["hazard_pc"]
        misspec_pc[:] = state["misspec_pc"]
        taken_pc[:] = state["taken_pc"]
        movcond_pc[:] = state["movcond_pc"]

    while pc != HALT:
        if checkpoint_at is not None and steps >= checkpoint_at:
            from repro.arch.checkpoint import make_snapshot

            return make_snapshot(
                machine, "fast",
                instructions=steps, pc=pc, regs=regs, cmp_state=cmp_state,
                carry=carry, last_load_reg=last_load_reg, output=output,
                memory=memory, hierarchy=hierarchy,
                state={
                    "exec_counts": list(exec_counts),
                    "ic_l2_pc": list(ic_l2_pc),
                    "ic_mem_pc": list(ic_mem_pc),
                    "d_l2_pc": list(d_l2_pc),
                    "d_mem_pc": list(d_mem_pc),
                    "hazard_pc": list(hazard_pc),
                    "misspec_pc": list(misspec_pc),
                    "taken_pc": list(taken_pc),
                    "movcond_pc": list(movcond_pc),
                },
            )
        if not 0 <= pc < n_insts:
            raise MachineError(f"pc out of range: {pc}")
        t = code[pc]
        steps += 1
        if steps > limit:
            raise MachineError("machine step limit exceeded")
        if fx is not None:
            if fx.on_step(steps, pc, regs, memory) is not None:
                # corrupted fetch: the slot executes as a bubble (same
                # architectural effect as the legacy engine's skip)
                exec_counts[pc] += 1
                last_load_reg = -1
                pc = pc + 1
                continue
        # instruction fetch
        level = fetch(pc * inst_bytes)
        if level != "l1":
            if level == "l2":
                ic_l2_pc[pc] += 1
            else:
                ic_mem_pc[pc] += 1
        exec_counts[pc] += 1
        # load-use hazard
        if last_load_reg >= 0:
            if last_load_reg in t[1]:
                hazard_pc[pc] += 1
            last_load_reg = -1
        op = t[0]
        next_pc = pc + 1

        if op == OP_ALU:
            d = t[3]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[4]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            sub = t[2]
            mask = t[6]
            if sub == 0:
                value = (a + b) & mask
            elif sub == 1:
                value = (a - b) & mask
            elif sub == 2:
                value = a & b
            elif sub == 3:
                value = a | b
            elif sub == 4:
                value = a ^ b
            elif sub == 5:
                value = (a << b) & mask if b < 32 else 0
            elif sub == 6:
                value = (a >> b) if b < 32 else 0
            else:  # asr
                ty = t[7]
                shift = min(b, ty.bits - 1)
                value = ty.wrap(ty.to_signed(a) >> shift)
            w = t[5]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_MOV:
            d = t[2]
            k = d[0]
            value = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            w = t[3]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_LOAD:
            d = t[2]
            k = d[0]
            base = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            addr = (base + t[3]) & 0xFFFFFFFF
            value = mem_load(addr, t[4])
            w = t[5]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
            lvl = data_access(addr)
            if lvl != "l1":
                if lvl == "l2":
                    d_l2_pc[pc] += 1
                else:
                    d_mem_pc[pc] += 1
            last_load_reg = t[6]
        elif op == OP_STORE:
            d = t[2]
            k = d[0]
            value = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            base = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            addr = (base + t[4]) & 0xFFFFFFFF
            mem_store(addr, value, t[5])
            # legacy path discards the store's stall cycles; levels only
            lvl = data_access(addr)
            if lvl != "l1":
                if lvl == "l2":
                    d_l2_pc[pc] += 1
                else:
                    d_mem_pc[pc] += 1
        elif op == OP_BCOND:
            a, b, width = cmp_state
            ty = int_type(64 if width == 8 else width * 8)
            if evaluate_icmp(t[2], a, b, ty):
                next_pc = t[3]
                taken_pc[pc] += 1
        elif op == OP_B:
            next_pc = t[2]
        elif op == OP_CMP:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            cmp_state = (a, b, t[4])
        elif op == OP_BS_BIN:
            d = t[3]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[4]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            sub = t[2]
            if sub == 0:
                wide = a + b
            elif sub == 1:
                wide = a - b
            elif sub == 2:
                wide = a & b
            elif sub == 3:
                wide = a | b
            elif sub == 4:
                wide = a ^ b
            elif sub == 5:
                wide = (a << b) if b < 32 else 0
            else:
                wide = a >> b if b < 32 else 0
            miss = wide < 0 or wide > spec_mask
            if fx is not None:
                miss = fx.spec_outcome(miss)
            if miss:
                misspec_pc[pc] += 1
                next_pc = pc + delta if fx is None else fx.redirect(pc, delta)
            else:
                w = t[5]
                r = w[0]
                regs[r] = (regs[r] & w[3]) | ((wide & w[2]) << w[1])
        elif op == OP_BS_CMP:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            cmp_state = (a, b, t[4])
        elif op == OP_BS_TRUNC:
            d = t[2]
            k = d[0]
            value = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            miss = value > spec_mask
            if fx is not None:
                miss = fx.spec_outcome(miss)
            if miss:
                misspec_pc[pc] += 1
                next_pc = pc + delta if fx is None else fx.redirect(pc, delta)
            else:
                w = t[3]
                r = w[0]
                regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_BS_TRUNC_HI:
            d = t[2]
            k = d[0]
            value = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            miss = value != 0
            if fx is not None:
                miss = fx.spec_outcome(miss)
            if miss:
                misspec_pc[pc] += 1
                next_pc = pc + delta if fx is None else fx.redirect(pc, delta)
        elif op == OP_BS_LDR:
            d = t[2]
            k = d[0]
            addr = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            value = mem_load(addr, t[3])
            lvl = data_access(addr)
            if lvl != "l1":
                if lvl == "l2":
                    d_l2_pc[pc] += 1
                else:
                    d_mem_pc[pc] += 1
            miss = value > spec_mask
            if fx is not None:
                miss = fx.spec_outcome(miss)
            if miss:
                misspec_pc[pc] += 1
                next_pc = pc + delta if fx is None else fx.redirect(pc, delta)
            else:
                w = t[4]
                r = w[0]
                regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
                last_load_reg = t[6]
        elif op == OP_EXT:
            d = t[2]
            k = d[0]
            value = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            ty = t[3]
            if ty is not None:  # sxt
                value = ty.to_signed(value) & 0xFFFFFFFF
            w = t[4]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_MOVCOND:
            a, b, width = cmp_state
            ty = int_type(64 if width == 8 else width * 8)
            if evaluate_icmp(t[2], a, b, ty):
                movcond_pc[pc] += 1
                d = t[3]
                k = d[0]
                value = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                    d[1] if k == 0 else regs[13]
                )
                w = t[5]
                r = w[0]
                regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_MUL:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            value = (a * b) & t[5]
            w = t[4]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_UMULL:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            product = a * b
            w = t[4]
            r = w[0]
            value = product & 0xFFFFFFFF
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
            w = t[5]
            r = w[0]
            value = (product >> 32) & 0xFFFFFFFF
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_DIV:
            d = t[3]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[4]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            if b == 0:
                raise MachineError("division by zero")
            sub = t[2]
            ty = t[6]
            if sub == 0:  # udiv
                value = a // b
            elif sub == 2:  # urem
                value = a % b
            else:
                sa, sb = ty.to_signed(a), ty.to_signed(b)
                q = abs(sa) // abs(sb)
                rr = abs(sa) % abs(sb)
                if sub == 1:  # sdiv
                    value = ty.wrap(-q if (sa < 0) != (sb < 0) else q)
                else:  # srem
                    value = ty.wrap(-rr if sa < 0 else rr)
            value = ty.wrap(value)
            w = t[5]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_ADDS or op == OP_ADC:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            full = a + b + (carry if op == OP_ADC else 0)
            carry = full >> 32
            value = full & 0xFFFFFFFF
            w = t[4]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_SUBS:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            carry = 1 if a >= b else 0
            value = (a - b) & 0xFFFFFFFF
            w = t[4]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_SBC:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            full = a - b - (1 - carry)
            carry = 1 if full >= 0 else 0
            value = full & 0xFFFFFFFF
            w = t[4]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_ADDSL or op == OP_ORRSL:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            shift = t[4]
            if op == OP_ADDSL:
                value = (a + (b << shift)) & 0xFFFFFFFF
            else:
                shifted = (b << shift) & 0xFFFFFFFF if shift >= 0 else (
                    b >> (-shift)
                )
                value = a | shifted
            w = t[5]
            r = w[0]
            regs[r] = (regs[r] & w[3]) | ((value & w[2]) << w[1])
        elif op == OP_BL:
            regs[14] = pc + 1
            next_pc = t[2]
        elif op == OP_BX:
            next_pc = regs[14]
        elif op == OP_SUBSPI:
            regs[13] = (regs[13] - t[2]) & 0xFFFFFFFF
        elif op == OP_ADDSPI:
            regs[13] = (regs[13] + t[2]) & 0xFFFFFFFF
        elif op == OP_CMP64HI:
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            cmp_state = (a, b, "hi")
        elif op == OP_CMP64LO:
            a_hi, b_hi, _tag = cmp_state
            d = t[2]
            k = d[0]
            a = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            d = t[3]
            k = d[0]
            b = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            cmp_state = ((a_hi << 32) | a, (b_hi << 32) | b, 8)
        elif op == OP_OUT:
            d = t[2]
            k = d[0]
            value = ((regs[d[1]] >> d[2]) & d[3]) if k == 1 else (
                d[1] if k == 0 else regs[13]
            )
            output.append(value)
        elif op == OP_NOP:
            pass
        else:  # OP_ERROR
            raise MachineError(f"{t[2]} at {pc}")
        pc = next_pc

    return fold_result(
        machine, narrow_rf, code, effects, exec_counts,
        ic_l2_pc, ic_mem_pc, d_l2_pc, d_mem_pc,
        hazard_pc, misspec_pc, taken_pc, movcond_pc,
        output, memory, regs, fx,
    )


def fold_result(
    machine, narrow_rf, code, effects, exec_counts,
    ic_l2_pc, ic_mem_pc, d_l2_pc, d_mem_pc,
    hazard_pc, misspec_pc, taken_pc, movcond_pc,
    output, memory, regs, fx,
):
    """Fold static effects and per-pc dynamic events into a SimResult.

    Everything below is derived from (exec count, per-pc event arrays)
    and must stay bit-identical to the legacy interpreter.  The per-pc
    form of the same derivation lives in :func:`pc_counters`; the
    conservation tests in tests/test_obs.py pin the two together.

    Shared by the predecoded stepper (:func:`run_fast`) and the compiled
    engine (:mod:`repro.arch.compiled`): both record the same nine per-pc
    arrays, so aggregation is literally the same code path and cannot
    drift between engines.
    """
    from repro.arch.machine import SimResult

    delta = machine.linked.delta
    result = SimResult(output=output, slice_width=machine.slice_width)
    counters = result.counters

    totals = [0] * N_STATIC
    instructions = 0
    stall_cycles = 0
    misspecs = 0
    taken_dyn = 0
    ic_l2 = ic_mem = 0
    d_l2 = d_mem = 0
    rf_w_dyn = {1: 0, 2: 0, 4: 0}
    rf_r_dyn = {1: 0, 2: 0, 4: 0}
    for pc_i, n in enumerate(exec_counts):
        if not n:
            continue
        instructions += n
        for cid, amount in effects[pc_i]:
            totals[cid] += amount * n
        fl2 = ic_l2_pc[pc_i]
        fmem = ic_mem_pc[pc_i]
        ic_l2 += fl2
        ic_mem += fmem
        stall = 10 * fl2 + 70 * fmem + hazard_pc[pc_i]
        t = code[pc_i]
        op = t[0]
        miss = misspec_pc[pc_i]
        if miss:
            misspecs += miss
            stall += 3 * miss
        if op == OP_LOAD or op == OP_STORE or op == OP_BS_LDR:
            al2 = d_l2_pc[pc_i]
            amem = d_mem_pc[pc_i]
            d_l2 += al2
            d_mem += amem
            if op != OP_STORE:
                # loads stall 1/10/70 by level; stores charge no stall
                stall += (n - al2 - amem) + 10 * al2 + 70 * amem
            if op == OP_BS_LDR:
                rf_w_dyn[t[5]] += n - miss
        elif op == OP_BCOND:
            tk = taken_pc[pc_i]
            taken_dyn += tk
            stall += 2 * tk
        elif op == OP_BS_BIN:
            rf_w_dyn[t[6]] += n - miss
        elif op == OP_BS_TRUNC:
            rf_w_dyn[t[4]] += n - miss
        elif op == OP_MOVCOND:
            mv = movcond_pc[pc_i]
            rf_w_dyn[t[6]] += mv
            if t[4]:
                rf_r_dyn[t[4]] += mv
        stall_cycles += stall

    result.instructions = instructions
    result.cycles = instructions + stall_cycles + totals[C_XCYCLES]
    if fx is not None:
        result.cycles += fx.extra_cycles
    result.misspeculations = misspecs
    result.branches = totals[C_BRANCHES]
    result.taken_branches = totals[C_TAKEN] + taken_dyn
    result.spill_stores = totals[C_SPILL_S]
    result.spill_loads = totals[C_SPILL_L]
    result.copies = totals[C_COPIES]
    result.loads = totals[C_LOADS]
    result.stores = totals[C_STORES]

    counters.rf_reads_by_width = {
        1: totals[C_RF_R1] + rf_r_dyn[1],
        2: totals[C_RF_R2] + rf_r_dyn[2],
        4: totals[C_RF_R4] + rf_r_dyn[4],
    }
    counters.rf_writes_by_width = {
        1: totals[C_RF_W1] + rf_w_dyn[1],
        2: totals[C_RF_W2] + rf_w_dyn[2],
        4: totals[C_RF_W4] + rf_w_dyn[4],
    }
    counters.alu32_ops = totals[C_ALU32]
    counters.alu8_ops = totals[C_ALU8]
    counters.mul_ops = totals[C_MUL]
    counters.div_ops = totals[C_DIV]
    counters.move_ops = totals[C_MOVE]
    counters.cycles = result.cycles
    counters.icache_l1 = instructions - ic_l2 - ic_mem
    counters.icache_l2 = ic_l2
    counters.icache_mem = ic_mem
    counters.dcache_l1 = totals[C_LOADS] + totals[C_STORES] - d_l2 - d_mem
    counters.dcache_l2 = d_l2
    counters.dcache_mem = d_mem

    result.class_counts = {
        "alu32": totals[K_ALU32],
        "alu8": totals[K_ALU8],
        "mul": totals[K_MUL],
        "div": totals[K_DIV],
        "move": totals[K_MOVE],
        "mem": totals[K_MEM],
        "branch": totals[K_BRANCH],
    }
    result.memory = memory
    result.return_value = regs[0]

    if machine.obs:
        from repro.obs.events import PcSample

        result.obs = PcSample(
            narrow_rf=narrow_rf,
            delta=delta,
            exec_counts=exec_counts,
            icache_l2=ic_l2_pc,
            icache_mem=ic_mem_pc,
            dcache_l2=d_l2_pc,
            dcache_mem=d_mem_pc,
            hazards=hazard_pc,
            misspecs=misspec_pc,
            taken=taken_pc,
            movconds=movcond_pc,
        )
    return result


#: counter names produced by :func:`pc_counters`, in report order
PC_COUNTER_FIELDS = (
    "instructions", "cycles", "misspeculations", "branches",
    "taken_branches", "loads", "stores", "spill_loads", "spill_stores",
    "copies",
)


def pc_counters(linked, narrow_rf, pc, sample):
    """Rebuild one pc's aggregate contribution from a :class:`PcSample`.

    Returns ``(fields, counters, class_counts)`` where ``fields`` maps
    :data:`PC_COUNTER_FIELDS` names to integers and ``counters`` is an
    :class:`repro.arch.energy.EnergyCounters` holding this pc's share.
    Summing the return over every pc reproduces the :class:`SimResult`
    aggregates *bit for bit* — the conservation invariant that
    :mod:`repro.obs.attribution` builds on and tests/fuzzing enforce.
    """
    from repro.arch.energy import EnergyCounters

    code, effects = predecode(linked, narrow_rf)
    n = sample.exec_counts[pc]
    fields = {name: 0 for name in PC_COUNTER_FIELDS}
    counters = EnergyCounters()
    classes = {k: 0 for k in
               ("alu32", "alu8", "mul", "div", "move", "mem", "branch")}
    if not n:
        return fields, counters, classes

    totals = [0] * N_STATIC
    for cid, amount in effects[pc]:
        totals[cid] += amount * n

    fl2 = sample.icache_l2[pc]
    fmem = sample.icache_mem[pc]
    stall = 10 * fl2 + 70 * fmem + sample.hazards[pc]
    t = code[pc]
    op = t[0]
    miss = sample.misspecs[pc]
    stall += 3 * miss
    rf_w_dyn = {1: 0, 2: 0, 4: 0}
    rf_r_dyn = {1: 0, 2: 0, 4: 0}
    al2 = amem = 0
    taken_dyn = 0
    if op == OP_LOAD or op == OP_STORE or op == OP_BS_LDR:
        al2 = sample.dcache_l2[pc]
        amem = sample.dcache_mem[pc]
        if op != OP_STORE:
            stall += (n - al2 - amem) + 10 * al2 + 70 * amem
        if op == OP_BS_LDR:
            rf_w_dyn[t[5]] += n - miss
    elif op == OP_BCOND:
        taken_dyn = sample.taken[pc]
        stall += 2 * taken_dyn
    elif op == OP_BS_BIN:
        rf_w_dyn[t[6]] += n - miss
    elif op == OP_BS_TRUNC:
        rf_w_dyn[t[4]] += n - miss
    elif op == OP_MOVCOND:
        mv = sample.movconds[pc]
        rf_w_dyn[t[6]] += mv
        if t[4]:
            rf_r_dyn[t[4]] += mv

    fields["instructions"] = n
    fields["cycles"] = n + stall + totals[C_XCYCLES]
    fields["misspeculations"] = miss
    fields["branches"] = totals[C_BRANCHES]
    fields["taken_branches"] = totals[C_TAKEN] + taken_dyn
    fields["loads"] = totals[C_LOADS]
    fields["stores"] = totals[C_STORES]
    fields["spill_loads"] = totals[C_SPILL_L]
    fields["spill_stores"] = totals[C_SPILL_S]
    fields["copies"] = totals[C_COPIES]

    counters.rf_reads_by_width = {
        1: totals[C_RF_R1] + rf_r_dyn[1],
        2: totals[C_RF_R2] + rf_r_dyn[2],
        4: totals[C_RF_R4] + rf_r_dyn[4],
    }
    counters.rf_writes_by_width = {
        1: totals[C_RF_W1] + rf_w_dyn[1],
        2: totals[C_RF_W2] + rf_w_dyn[2],
        4: totals[C_RF_W4] + rf_w_dyn[4],
    }
    counters.alu32_ops = totals[C_ALU32]
    counters.alu8_ops = totals[C_ALU8]
    counters.mul_ops = totals[C_MUL]
    counters.div_ops = totals[C_DIV]
    counters.move_ops = totals[C_MOVE]
    counters.cycles = fields["cycles"]
    counters.icache_l1 = n - fl2 - fmem
    counters.icache_l2 = fl2
    counters.icache_mem = fmem
    counters.dcache_l1 = totals[C_LOADS] + totals[C_STORES] - al2 - amem
    counters.dcache_l2 = al2
    counters.dcache_mem = amem

    classes["alu32"] = totals[K_ALU32]
    classes["alu8"] = totals[K_ALU8]
    classes["mul"] = totals[K_MUL]
    classes["div"] = totals[K_DIV]
    classes["move"] = totals[K_MOVE]
    classes["mem"] = totals[K_MEM]
    classes["branch"] = totals[K_BRANCH]
    return fields, counters, classes
