"""R10K-style out-of-order engine: the fourth machine engine.

The paper measures BITSPEC on an in-order 6-stage core; this module asks
whether per-variable bitwidth speculation survives the machinery every
high-traffic core actually ships: register renaming onto a physical
register file, a reorder buffer, an issue queue, and branch prediction
with checkpoint-based rollback (docs/ooo.md).

Execution model — *fetch-driven, dependency-timed*.  The engine walks the
architecturally correct path in program order, transcribing the legacy
interpreter's semantics op for op, which is what makes the committed
contract (:data:`repro.arch.machine.COMMITTED_FIELDS` — traps, the out
stream, memory/globals, instruction and misspeculation counts) bit-identical
to the legacy/fast/compiled engines on every program.  Around that committed
spine it keeps the real OoO structures and lets *them* produce the timing:

* every architectural register (r0–r15 plus the renamed flags: the
  ``cmp`` state and the carry bit) maps through a rename table onto a
  value-holding physical register file; each physical register carries
  the cycle its value becomes available, so issue timing emerges from
  true dataflow (partial-slice writes are read-modify-write and depend
  on the previous mapping);
* a reorder buffer and an issue queue of configurable size
  (``REPRO_OOO_ROB`` / ``REPRO_OOO_IQ``) bound the in-flight window —
  dispatch stalls when the uop ``ROB``/``IQ`` slots ago has not yet
  retired/issued;
* a W-wide fetch/rename/commit front and back end (``REPRO_OOO_WIDTH``),
  a 2-bit bimodal branch predictor (``REPRO_OOO_BP_BITS``) and a return
  address stack (``REPRO_OOO_RAS``) drive control speculation;
* functional units: 2 ALUs (branches share them), 1 memory port, 1
  multiply/divide unit (the divider is unpipelined).

**Composed recovery** is the point of the model.  Every speculation point
(conditional branch, indirect return, ``bs_*`` op) allocates a rename-map
checkpoint.  When a prediction is wrong — a mispredicted branch, a return
that misses the RAS, or a ``bs_*`` op whose result leaves the slice — the
engine genuinely fetches, renames and (guardedly) executes the wrong path
until the speculation resolves at execute, then recovers through the ROB:
younger uops are squashed, their physical registers returned to the free
list, the rename map is restored from the checkpoint, and fetch redirects.
The *only* difference between the two mechanisms is the redirect rule —
a branch redirects to the correct target, a bitwidth misspeculation
redirects to ``pc + Δ``, the skeleton slot of the SIR recovery contract.
Wrong-path work never touches architectural state: its loads may pollute
the data cache and every fetched wrong-path uop burns fetch/rename/issue
energy, but stores are held in the store buffer and discarded, and its
renames die with the flush.

Cycles and energy are therefore *new outputs*: committed state matches
the in-order engines bit for bit while ``cycles``, the cache-level
counters and the OoO structure events (rename/ROB/IQ/wakeup/checkpoint,
see :mod:`repro.arch.energy`) describe the out-of-order machine.
``SimResult.ooo`` carries an :class:`OooStats` with the speculation
bookkeeping (checkpoints, recoveries by mechanism, wrong-path uops).

Fault hooks: the engine consults a fault session only at recovery time
(:meth:`repro.faults.session.FaultSession.recovery_action`) for the two
OoO-native kinds — rename-checkpoint corruption and flush suppression.
Any other fault kind (and any ``obs=True`` run) degrades to the
predecoded stepper, exactly as the compiled engine does, so the generic
campaign classification stays engine-invariant.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import asdict, dataclass

from repro.arch.cache import MemoryHierarchy
from repro.arch.machine import (
    HALT,
    _DIV_OPS,
    FaultTrap,
    MachineError,
    SimResult,
)
from repro.arch.widths import BYTE_MASKS as _MASKS
from repro.backend.mir import Imm, Slice
from repro.interp.interpreter import evaluate_icmp
from repro.interp.memory import FlatMemory, STACK_TOP, initialize_globals
from repro.ir.types import int_type

#: renamed architectural state: r0–r15, the cmp state (16), the carry (17)
_ARCH_REGS = 18
_CMP = 16
_CARRY = 17

#: fetch-to-dispatch depth in cycles (fetch, decode, rename)
_FRONT_LAT = 3
#: cycles between a speculation resolving at execute and the first
#: correct-path fetch slot
_REDIRECT_PENALTY = 2
#: hard cap on wrong-path uops modeled per recovery window
_WP_CAP = 48

#: load-to-use latency by the data-cache level that served the access
_LOAD_LAT = {"l1": 2, "l2": 12, "mem": 72}


@dataclass(frozen=True)
class OooParams:
    """Structure sizes, overridable via ``REPRO_OOO_*`` (docs/configuration.md)."""

    rob: int = 48
    iq: int = 24
    width: int = 2
    bp_bits: int = 9
    ras: int = 8


def _env_int(name: str, default: int, lo: int, hi: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r}: expected an integer") from None
    if not lo <= value <= hi:
        raise ValueError(f"{name}={value}: expected a value in [{lo}, {hi}]")
    return value


def ooo_params() -> OooParams:
    """Resolve the OoO structure sizes from the environment."""
    return OooParams(
        rob=_env_int("REPRO_OOO_ROB", 48, 4, 512),
        iq=_env_int("REPRO_OOO_IQ", 24, 2, 256),
        width=_env_int("REPRO_OOO_WIDTH", 2, 1, 8),
        bp_bits=_env_int("REPRO_OOO_BP_BITS", 9, 4, 16),
        ras=_env_int("REPRO_OOO_RAS", 8, 1, 64),
    )


@dataclass
class OooStats:
    """Speculation bookkeeping attached to ``SimResult.ooo``."""

    #: uops that entered rename (committed + wrong path)
    fetched_uops: int = 0
    #: uops fetched down a wrong path and squashed at recovery
    wrong_path_uops: int = 0
    #: rename-map checkpoints allocated (one per speculation point)
    checkpoints: int = 0
    #: ROB recovery events of any mechanism
    recoveries: int = 0
    #: conditional-branch direction mispredictions
    branch_mispredicts: int = 0
    #: ``bx`` returns the RAS predicted wrong (or had nothing for)
    return_mispredicts: int = 0
    #: bitwidth misspeculations recovered through the ROB (Δ-redirect)
    misspec_recoveries: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


def run_ooo(machine) -> SimResult:
    """Execute ``machine``'s program on the out-of-order model.

    Degrades to the predecoded stepper for ``obs=True`` runs and for any
    fault session the OoO model does not natively implement — identical
    committed state either way (docs/engines.md).
    """
    fx = machine.faults
    if fx is not None and not getattr(fx, "ooo_native", False):
        from repro.arch.predecode import run_fast

        return run_fast(machine)
    if fx is None and machine.obs:
        from repro.arch.predecode import run_fast

        return run_fast(machine)

    params = ooo_params()
    ROB = params.rob
    IQ = params.iq
    W = params.width

    linked = machine.linked
    insts = linked.insts
    delta = linked.delta
    inst_bytes = linked.inst_bytes
    result = SimResult(slice_width=machine.slice_width)
    counters = result.counters
    rf_reads = counters.rf_reads_by_width
    rf_writes = counters.rf_writes_by_width
    class_counts = result.class_counts
    hierarchy = MemoryHierarchy(machine.geometry)
    fetch = hierarchy.fetch
    data_access = hierarchy.data_access
    spec_mask = machine.spec_mask
    stats = OooStats()

    memory = FlatMemory()
    initialize_globals(memory, machine.module, linked.global_addresses)
    mem_load = memory.load
    mem_store = memory.store

    # rename state: arch reg -> physical reg; PRF sized so the free list
    # never runs dry (<= 1 fresh preg per in-flight uop plus slack for a
    # leaked wrong-path window under flush suppression)
    PRF = ROB + _ARCH_REGS + 2 * _WP_CAP
    rmap = list(range(_ARCH_REGS))
    prf: list = [0] * PRF
    ready = [0] * PRF
    prf[13] = STACK_TOP
    prf[14] = HALT
    prf[_CMP] = (0, 0, 4)
    free = deque(range(_ARCH_REGS, PRF))

    # timing state
    fq_time = 0          # cycle of the current fetch group
    fq_used = 0          # fetch slots consumed in that cycle
    prev_disp = 0        # in-order rename: dispatch cycles are monotonic
    last_ct = 0          # cycle of the youngest commit
    commits_ic = 0       # commits in that cycle
    nseq = 0             # global uop sequence number (both paths)
    rob_ring = [0] * ROB  # cycle the slot of uop (n - ROB) frees
    iq_ring = [0] * IQ
    alu_pool = [0, 0]    # next-free cycle per functional unit
    mem_pool = [0]
    mdiv_pool = [0]

    # branch predictor: 2-bit bimodal counters + return address stack
    bp = bytearray([1]) * (1 << params.bp_bits)
    bp_mask = len(bp) - 1
    ras = [0] * params.ras
    ras_top = 0
    ras_count = 0

    narrow = machine.narrow_rf
    base_narrow = narrow
    fallback = getattr(linked, "fallback_functions", None) or None
    owner = linked.owner if fallback else None

    pc = linked.entry_index
    steps = 0
    instructions = 0
    misspecs = 0
    ic_l1 = ic_l2 = ic_mem = 0
    d_l1 = d_l2 = d_mem = 0
    limit = machine.step_limit

    # -- rename/PRF helpers ---------------------------------------------------

    def read_op(op, srcs):
        """Legacy ``read()`` through the rename map; collects the source's
        ready cycle.  Event accounting matches the legacy arm exactly."""
        if type(op) is Slice:
            size = op.size if op.size <= 4 else 4
            width = size if narrow else 4
            rf_reads[width] = rf_reads.get(width, 0) + 1
            counters.rename_reads += 1
            p = rmap[op.reg]
            srcs.append(ready[p])
            v = prf[p]
            if fx is not None and type(v) is not int:
                v = 0  # fault-aliased physical register read as raw bits
            return (v >> (op.offset * 8)) & _MASKS[size]
        if type(op) is Imm:
            return op.value & 0xFFFFFFFF
        if op == "sp":
            rf_reads[4] += 1
            counters.rename_reads += 1
            p = rmap[13]
            srcs.append(ready[p])
            v = prf[p]
            if fx is not None and type(v) is not int:
                v = 0
            return v
        raise MachineError(f"cannot read operand {op!r}")

    def merge_dep(op, srcs):
        """A partial-slice write is a read-modify-write of the previous
        physical register: add that dependency."""
        if type(op) is Slice and not (op.offset == 0 and op.size >= 4):
            srcs.append(ready[rmap[op.reg]])

    def write_op(op, value, comp):
        """Legacy ``write()`` through rename: allocate a fresh physical
        register, merge the slice, retire the old mapping to the free
        list (safe here: all older readers have captured their value and
        no checkpoint outlives its own recovery)."""
        if type(op) is not Slice:
            raise MachineError(f"cannot write operand {op!r}")
        size = op.size if op.size <= 4 else 4
        width = size if narrow else 4
        rf_writes[width] = rf_writes.get(width, 0) + 1
        counters.rename_writes += 1
        counters.iq_wakeups += 1
        old = rmap[op.reg]
        ov = prf[old]
        if fx is not None and type(ov) is not int:
            ov = 0
        p = free.popleft()
        shift = op.offset * 8
        mask = _MASKS[size] << shift
        prf[p] = (ov & ~mask & 0xFFFFFFFF) | ((value & _MASKS[size]) << shift)
        ready[p] = comp
        rmap[op.reg] = p
        free.append(old)

    def write_reg(reg, value, comp):
        """Full-width architectural write with no RF event (the legacy
        arms that poke ``regs[13]``/``regs[14]`` directly)."""
        counters.rename_writes += 1
        counters.iq_wakeups += 1
        old = rmap[reg]
        p = free.popleft()
        prf[p] = value
        ready[p] = comp
        rmap[reg] = p
        free.append(old)

    def read_cmp(srcs):
        p = rmap[_CMP]
        srcs.append(ready[p])
        v = prf[p]
        if fx is not None and type(v) is not tuple:
            v = (0, 0, 4)  # fault-aliased flags register
        return v

    def read_carry(srcs):
        p = rmap[_CARRY]
        srcs.append(ready[p])
        v = prf[p]
        if fx is not None and type(v) is not int:
            v = 0
        return v

    # -- timing helpers -------------------------------------------------------

    def finish(disp, srcs, pool, lat, occ=1):
        """Issue when operands are ready and a unit frees; returns the
        completion (writeback/resolve) cycle and frees this uop's IQ slot."""
        t = disp + 1
        for r in srcs:
            if r > t:
                t = r
        bi = 0
        bt = pool[0]
        for k in range(1, len(pool)):
            if pool[k] < bt:
                bt = pool[k]
                bi = k
        if bt > t:
            t = bt
        pool[bi] = t + occ
        iq_ring[nseq % IQ] = t + 1
        return t + lat

    def retire(comp):
        """In-order, W-wide commit; frees this uop's ROB slot."""
        nonlocal last_ct, commits_ic
        t = comp + 1
        if t > last_ct:
            last_ct = t
            commits_ic = 1
        else:
            t = last_ct
            if commits_ic >= W:
                t += 1
                last_ct = t
                commits_ic = 1
            else:
                commits_ic += 1
        counters.rob_reads += 1
        rob_ring[nseq % ROB] = t + 1
        return t

    # -- wrong-path modeling --------------------------------------------------

    def wp_read(op):
        if type(op) is Slice:
            size = op.size if op.size <= 4 else 4
            width = size if narrow else 4
            rf_reads[width] = rf_reads.get(width, 0) + 1
            counters.rename_reads += 1
            v = prf[rmap[op.reg]]
            if type(v) is not int:
                v = 0
            return (v >> (op.offset * 8)) & _MASKS[size]
        if type(op) is Imm:
            return op.value & 0xFFFFFFFF
        if op == "sp":
            rf_reads[4] += 1
            counters.rename_reads += 1
            v = prf[rmap[13]]
            return v if type(v) is int else 0
        return 0

    def wp_write(op, value, alloc_wp):
        if type(op) is not Slice:
            return
        size = op.size if op.size <= 4 else 4
        width = size if narrow else 4
        rf_writes[width] = rf_writes.get(width, 0) + 1
        counters.rename_writes += 1
        counters.iq_wakeups += 1
        old = rmap[op.reg]
        ov = prf[old]
        if type(ov) is not int:
            ov = 0
        p = free.popleft()
        alloc_wp.append(p)
        shift = op.offset * 8
        mask = _MASKS[size] << shift
        prf[p] = (ov & ~mask & 0xFFFFFFFF) | ((value & _MASKS[size]) << shift)
        ready[p] = 0
        rmap[op.reg] = p

    def wp_write_reg(reg, value, alloc_wp):
        counters.rename_writes += 1
        p = free.popleft()
        alloc_wp.append(p)
        prf[p] = value
        ready[p] = 0
        rmap[reg] = p

    def wp_exec(inst, wpc, alloc_wp):
        """One wrong-path uop: burn the energy a real machine would,
        follow predicted control flow, never touch architectural state.
        Returns the next wrong-path pc, or None to stop fetching.
        Wrong-path values are best-effort (faulting loads and divides
        poison to 0) — they steer only cache pollution, never results."""
        nonlocal d_l1, d_l2, d_mem
        op = inst.opcode
        nxt = wpc + 1
        try:
            if op == "b" or op == "bl":
                if op == "bl":
                    wp_write_reg(14, wpc + 1, alloc_wp)
                nxt = inst.target
            elif op == "bcond":
                nxt = inst.target if bp[wpc & bp_mask] >= 2 else wpc + 1
            elif op == "bx":
                return None  # the RAS is checkpointed; stop fetching
            elif op in ("ldr", "ldrb", "ldrh"):
                base = wp_read(inst.uses[0])
                disp_v = inst.uses[1].value if len(inst.uses) > 1 else 0
                addr = (base + disp_v) & 0xFFFFFFFF
                size = {"ldr": 4, "ldrb": 1, "ldrh": 2}[op]
                level = data_access(addr)  # wrong-path loads pollute the D$
                if level == "l1":
                    d_l1 += 1
                elif level == "l2":
                    d_l2 += 1
                else:
                    d_mem += 1
                try:
                    value = mem_load(addr, size)
                except (MachineError, MemoryError):
                    value = 0
                wp_write(inst.defs[0], value, alloc_wp)
            elif op in ("str", "strb", "strh"):
                # stores wait in the store buffer until commit; a squashed
                # store never reaches the D$
                wp_read(inst.uses[0])
                wp_read(inst.uses[1])
            elif op == "bs_ldr":
                addr = wp_read(inst.uses[0])
                counters.alu8_ops += 1
                level = data_access(addr)
                if level == "l1":
                    d_l1 += 1
                elif level == "l2":
                    d_l2 += 1
                else:
                    d_mem += 1
                try:
                    value = mem_load(addr, inst.uses[1].value)
                except (MachineError, MemoryError):
                    value = 0
                if value <= spec_mask:
                    wp_write(inst.defs[0], value, alloc_wp)
            elif op == "bs_cmp":
                counters.alu8_ops += 1
                wp_read(inst.uses[0])
                wp_read(inst.uses[1])
            elif op.startswith("bs_"):
                counters.alu8_ops += 1
                a = wp_read(inst.uses[0])
                b = wp_read(inst.uses[1]) if len(inst.uses) > 1 else 0
                if inst.defs:
                    wp_write(inst.defs[0], (a + b) & 0xFFFFFFFF, alloc_wp)
            elif op in ("mov", "movi", "uxt", "sxt", "trunc", "movcond"):
                counters.move_ops += 1
                value = wp_read(inst.uses[0]) if inst.uses else 0
                if inst.defs:
                    wp_write(inst.defs[0], value, alloc_wp)
            elif op == "out":
                counters.move_ops += 1
                wp_read(inst.uses[0])
            elif op in ("mul", "umull"):
                counters.mul_ops += 1
                a = wp_read(inst.uses[0])
                b = wp_read(inst.uses[1])
                if inst.defs:
                    wp_write(inst.defs[0], (a * b) & 0xFFFFFFFF, alloc_wp)
            elif op in _DIV_OPS:
                counters.div_ops += 1
                a = wp_read(inst.uses[0])
                b = wp_read(inst.uses[1])
                if inst.defs:
                    wp_write(inst.defs[0], a // b if b else 0, alloc_wp)
            elif op in ("subspi", "addspi"):
                counters.alu32_ops += 1
                srcs: list = []
                sp = wp_read("sp")
                imm = inst.uses[0].value
                value = (sp - imm if op == "subspi" else sp + imm) & 0xFFFFFFFF
                wp_write_reg(13, value, alloc_wp)
            elif op in ("nop", "mode"):
                pass
            elif op in ("cmp", "cmp64hi", "cmp64lo"):
                counters.alu32_ops += 1
                wp_read(inst.uses[0])
                wp_read(inst.uses[1])
            else:
                # the remaining ALU forms: add..asr, adds/adc/subs/sbc,
                # addsl/orrsl — energy plus an approximate result
                counters.alu32_ops += 1
                a = wp_read(inst.uses[0]) if inst.uses else 0
                b = wp_read(inst.uses[1]) if len(inst.uses) > 1 else 0
                if inst.defs:
                    wp_write(inst.defs[0], (a + b) & 0xFFFFFFFF, alloc_wp)
        except (MachineError, MemoryError):
            pass  # poisoned wrong-path value; keep fetching
        return nxt

    def wrong_path(start_pc, start_time, start_used, resolve, alloc_wp):
        """Fetch/rename/execute the predicted (wrong) path from the slot
        after the speculation point until it resolves at ``resolve``."""
        nonlocal nseq, ic_l1, ic_l2, ic_mem
        wp_pc = start_pc
        wp_time = start_time
        wp_used = start_used
        cap = min(ROB - 1, _WP_CAP)
        count = 0
        while count < cap:
            if wp_used >= W:
                wp_time += 1
                wp_used = 0
            if wp_time >= resolve:
                break
            if wp_pc == HALT or not 0 <= wp_pc < len(insts):
                break
            level = fetch(wp_pc * inst_bytes)
            if level == "l1":
                ic_l1 += 1
            elif level == "l2":
                ic_l2 += 1
                wp_time += 10
                wp_used = 0
            else:
                ic_mem += 1
                wp_time += 70
                wp_used = 0
            if wp_time >= resolve:
                break
            wp_used += 1
            nseq += 1
            rob_ring[nseq % ROB] = resolve + 1
            iq_ring[nseq % IQ] = resolve + 1
            counters.rob_writes += 1
            counters.iq_writes += 1
            stats.fetched_uops += 1
            stats.wrong_path_uops += 1
            count += 1
            nxt = wp_exec(insts[wp_pc], wp_pc, alloc_wp)
            if nxt is None:
                break
            wp_pc = nxt
        return count

    def recover(predicted_pc, spec_fc, resolve, mechanism):
        """ROB recovery: model the wrong-path window, squash it, restore
        the rename-map checkpoint and redirect fetch.  ``mechanism`` is
        "branch", "return" or "misspec" — the redirect target rule is the
        caller's, everything else is shared."""
        nonlocal fq_time, fq_used
        stats.recoveries += 1
        if mechanism == "branch":
            stats.branch_mispredicts += 1
        elif mechanism == "return":
            stats.return_mispredicts += 1
        else:
            stats.misspec_recoveries += 1
        counters.ckpt_ops += 1  # checkpoint restore broadcast
        ckpt = list(rmap)
        alloc_wp: list = []
        wp_count = 0
        if predicted_pc is not None:
            wp_count = wrong_path(
                predicted_pc, spec_fc, fq_used, resolve, alloc_wp
            )
        act = fx.recovery_action(wp_count) if fx is not None else None
        if act == "flush_drop":
            # the flush never happens: stale wrong-path renames survive
            # and the squashed uops sit at the ROB head.  The commit-time
            # epoch check refuses to retire them.
            raise FaultTrap(
                f"ROB epoch check: wrong-path uop reached commit "
                f"(flush suppressed at recovery {stats.recoveries})"
            )
        rmap[:] = ckpt
        free.extend(alloc_wp)
        if act == "ckpt_bit":
            plan = fx.plan
            i = plan.reg % _ARCH_REGS
            p = (rmap[i] ^ (1 << (plan.bit % 7))) % PRF
            if type(prf[p]) is not int:
                prf[p] = 0  # stale bits reinterpreted as an integer
            rmap[i] = p
        fq_time = resolve + _REDIRECT_PENALTY
        fq_used = 0

    # -- the committed path ---------------------------------------------------

    while pc != HALT:
        if not 0 <= pc < len(insts):
            raise MachineError(f"pc out of range: {pc}")
        inst = insts[pc]
        steps += 1
        if steps > limit:
            raise MachineError("machine step limit exceeded")
        if owner is not None:
            narrow = base_narrow and owner[pc] not in fallback
        # fetch (W-wide; L2/DRAM instruction misses stall the front end)
        level = fetch(pc * inst_bytes)
        if level == "l1":
            ic_l1 += 1
        elif level == "l2":
            ic_l2 += 1
            fq_time += 10
            fq_used = 0
        else:
            ic_mem += 1
            fq_time += 70
            fq_used = 0
        if fq_used >= W:
            fq_time += 1
            fq_used = 0
        fc = fq_time
        fq_used += 1
        instructions += 1
        nseq += 1
        stats.fetched_uops += 1
        counters.rob_writes += 1
        counters.iq_writes += 1
        disp = fc + _FRONT_LAT
        t = rob_ring[nseq % ROB]
        if t > disp:
            disp = t
        t = iq_ring[nseq % IQ]
        if t > disp:
            disp = t
        if disp < prev_disp:
            disp = prev_disp
        prev_disp = disp

        kind = inst.kind
        if kind:
            if kind == "copy":
                result.copies += 1
            elif kind == "reload":
                result.spill_loads += 1
            elif kind == "spill":
                result.spill_stores += 1
        next_pc = pc + 1
        opcode = inst.opcode
        srcs: list = []

        if opcode == "mov" or opcode == "movi":
            value = read_op(inst.uses[0], srcs)
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_op(dest, value, comp)
            counters.move_ops += 1
            class_counts["move"] += 1
        elif opcode in ("ldr", "ldrb", "ldrh"):
            base = read_op(inst.uses[0], srcs)
            disp_v = inst.uses[1].value if len(inst.uses) > 1 else 0
            addr = (base + disp_v) & 0xFFFFFFFF
            size = {"ldr": 4, "ldrb": 1, "ldrh": 2}[opcode]
            value = mem_load(addr, size)
            level = data_access(addr)
            if level == "l1":
                d_l1 += 1
            elif level == "l2":
                d_l2 += 1
            else:
                d_mem += 1
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, mem_pool, _LOAD_LAT[level])
            write_op(dest, value, comp)
            result.loads += 1
            class_counts["mem"] += 1
        elif opcode in ("str", "strb", "strh"):
            value = read_op(inst.uses[0], srcs)
            base = read_op(inst.uses[1], srcs)
            disp_v = inst.uses[2].value if len(inst.uses) > 2 else 0
            addr = (base + disp_v) & 0xFFFFFFFF
            size = {"str": 4, "strb": 1, "strh": 2}[opcode]
            mem_store(addr, value, size)
            level = data_access(addr)
            if level == "l1":
                d_l1 += 1
            elif level == "l2":
                d_l2 += 1
            else:
                d_mem += 1
            comp = finish(disp, srcs, mem_pool, 1)
            result.stores += 1
            class_counts["mem"] += 1
        elif opcode in ("add", "sub", "and", "orr", "eor", "lsl", "lsr", "asr"):
            a = read_op(inst.uses[0], srcs)
            b = read_op(inst.uses[1], srcs)
            width = inst.width
            mask = _MASKS.get(width, 0xFFFFFFFF)
            if opcode == "add":
                value = (a + b) & mask
            elif opcode == "sub":
                value = (a - b) & mask
            elif opcode == "and":
                value = a & b
            elif opcode == "orr":
                value = a | b
            elif opcode == "eor":
                value = a ^ b
            elif opcode == "lsl":
                value = (a << b) & mask if b < 32 else 0
            elif opcode == "lsr":
                value = (a >> b) if b < 32 else 0
            else:  # asr
                bits = width * 8
                ty = int_type(bits)
                shift = min(b, bits - 1)
                value = ty.wrap(ty.to_signed(a) >> shift)
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_op(dest, value, comp)
            if narrow and width == 1:
                counters.alu8_ops += 1
                class_counts["alu8"] += 1
            else:
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
        elif opcode == "bs_ldr":
            stats.checkpoints += 1
            counters.ckpt_ops += 1
            addr = read_op(inst.uses[0], srcs)
            size = inst.uses[1].value
            value = mem_load(addr, size)
            level = data_access(addr)
            if level == "l1":
                d_l1 += 1
            elif level == "l2":
                d_l2 += 1
            else:
                d_mem += 1
            result.loads += 1
            counters.alu8_ops += 1
            class_counts["alu8"] += 1
            miss = value > spec_mask
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, mem_pool, _LOAD_LAT[level])
            if miss:
                misspecs += 1
                recover(pc + 1, fc, comp, "misspec")
                next_pc = pc + delta
            else:
                write_op(dest, value, comp)
        elif opcode.startswith("bs_"):
            counters.alu8_ops += 1
            class_counts["alu8"] += 1
            if opcode == "bs_cmp":
                a = read_op(inst.uses[0], srcs)
                b = read_op(inst.uses[1], srcs)
                comp = finish(disp, srcs, alu_pool, 1)
                counters.rename_writes += 1
                counters.iq_wakeups += 1
                old = rmap[_CMP]
                p = free.popleft()
                prf[p] = (a, b, inst.width)
                ready[p] = comp
                rmap[_CMP] = p
                free.append(old)
            else:
                stats.checkpoints += 1
                counters.ckpt_ops += 1
                if opcode == "bs_trunc":
                    value = read_op(inst.uses[0], srcs)
                    miss = value > spec_mask
                elif opcode == "bs_trunc_hi":
                    value = None
                    miss = read_op(inst.uses[0], srcs) != 0
                else:
                    a = read_op(inst.uses[0], srcs)
                    b = read_op(inst.uses[1], srcs)
                    if opcode == "bs_add":
                        wide = a + b
                    elif opcode == "bs_sub":
                        wide = a - b
                    elif opcode == "bs_and":
                        wide = a & b
                    elif opcode == "bs_orr":
                        wide = a | b
                    elif opcode == "bs_eor":
                        wide = a ^ b
                    elif opcode == "bs_lsl":
                        wide = (a << b) if b < 32 else 0
                    elif opcode == "bs_lsr":
                        wide = a >> b if b < 32 else 0
                    else:
                        raise MachineError(
                            f"unknown speculative opcode {opcode!r}"
                        )
                    value = wide
                    miss = wide < 0 or wide > spec_mask
                if inst.defs and not miss:
                    merge_dep(inst.defs[0], srcs)
                comp = finish(disp, srcs, alu_pool, 1)
                if miss:
                    misspecs += 1
                    recover(pc + 1, fc, comp, "misspec")
                    next_pc = pc + delta
                elif value is not None:
                    write_op(inst.defs[0], value, comp)
        elif opcode == "cmp":
            a = read_op(inst.uses[0], srcs)
            b = read_op(inst.uses[1], srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            counters.rename_writes += 1
            counters.iq_wakeups += 1
            old = rmap[_CMP]
            p = free.popleft()
            prf[p] = (a, b, inst.width)
            ready[p] = comp
            rmap[_CMP] = p
            free.append(old)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "cmp64hi":
            a = read_op(inst.uses[0], srcs)
            b = read_op(inst.uses[1], srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            counters.rename_writes += 1
            counters.iq_wakeups += 1
            old = rmap[_CMP]
            p = free.popleft()
            prf[p] = (a, b, "hi")
            ready[p] = comp
            rmap[_CMP] = p
            free.append(old)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "cmp64lo":
            a_hi, b_hi, tag = read_cmp(srcs)
            a = (a_hi << 32) | read_op(inst.uses[0], srcs)
            b = (b_hi << 32) | read_op(inst.uses[1], srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            counters.rename_writes += 1
            counters.iq_wakeups += 1
            old = rmap[_CMP]
            p = free.popleft()
            prf[p] = (a, b, 8)
            ready[p] = comp
            rmap[_CMP] = p
            free.append(old)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "b":
            comp = finish(disp, srcs, alu_pool, 1)
            next_pc = inst.target
            result.branches += 1
            result.taken_branches += 1
            class_counts["branch"] += 1
            fq_time += 1  # taken-branch fetch redirect bubble
            fq_used = 0
        elif opcode == "bcond":
            stats.checkpoints += 1
            counters.ckpt_ops += 1
            a, b, width = read_cmp(srcs)
            ty = int_type(64 if width == 8 else width * 8)
            result.branches += 1
            class_counts["branch"] += 1
            taken = evaluate_icmp(inst.cond, a, b, ty)
            bi = pc & bp_mask
            pred_taken = bp[bi] >= 2
            if taken:
                if bp[bi] < 3:
                    bp[bi] += 1
            elif bp[bi] > 0:
                bp[bi] -= 1
            comp = finish(disp, srcs, alu_pool, 1)
            if taken:
                next_pc = inst.target
                result.taken_branches += 1
            if pred_taken != taken:
                recover(
                    inst.target if pred_taken else pc + 1, fc, comp, "branch"
                )
            elif taken:
                fq_time += 1
                fq_used = 0
        elif opcode == "movcond":
            a, b, width = read_cmp(srcs)
            ty = int_type(64 if width == 8 else width * 8)
            if evaluate_icmp(inst.cond, a, b, ty):
                value = read_op(inst.uses[0], srcs)
                dest = inst.defs[0]
                merge_dep(dest, srcs)
                comp = finish(disp, srcs, alu_pool, 1)
                write_op(dest, value, comp)
            else:
                comp = finish(disp, srcs, alu_pool, 1)
            counters.move_ops += 1
            class_counts["move"] += 1
        elif opcode in ("uxt", "sxt", "trunc"):
            src = inst.uses[0]
            value = read_op(src, srcs)
            if opcode == "sxt":
                src_bits = (src.size if type(src) is Slice else 4) * 8
                value = int_type(src_bits).to_signed(value) & 0xFFFFFFFF
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_op(dest, value, comp)
            if narrow and inst.width == 1:
                counters.alu8_ops += 1
                class_counts["alu8"] += 1
            else:
                counters.move_ops += 1
                class_counts["move"] += 1
        elif opcode == "mul":
            value = (read_op(inst.uses[0], srcs) * read_op(inst.uses[1], srcs)) & _MASKS.get(
                inst.width, 0xFFFFFFFF
            )
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, mdiv_pool, 3)
            write_op(dest, value, comp)
            counters.mul_ops += 1
            class_counts["mul"] += 1
        elif opcode == "umull":
            product = read_op(inst.uses[0], srcs) * read_op(inst.uses[1], srcs)
            merge_dep(inst.defs[0], srcs)
            merge_dep(inst.defs[1], srcs)
            comp = finish(disp, srcs, mdiv_pool, 4)
            write_op(inst.defs[0], product & 0xFFFFFFFF, comp)
            write_op(inst.defs[1], (product >> 32) & 0xFFFFFFFF, comp)
            counters.mul_ops += 1
            class_counts["mul"] += 1
        elif opcode in _DIV_OPS:
            a = read_op(inst.uses[0], srcs)
            b = read_op(inst.uses[1], srcs)
            bits = inst.width * 8
            ty = int_type(bits)
            if b == 0:
                raise MachineError("division by zero")
            if opcode == "udiv":
                value = a // b
            elif opcode == "urem":
                value = a % b
            else:
                sa, sb = ty.to_signed(a), ty.to_signed(b)
                q = abs(sa) // abs(sb)
                r = abs(sa) % abs(sb)
                if opcode == "sdiv":
                    value = ty.wrap(-q if (sa < 0) != (sb < 0) else q)
                else:
                    value = ty.wrap(-r if sa < 0 else r)
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, mdiv_pool, 12, occ=12)
            write_op(dest, ty.wrap(value), comp)
            counters.div_ops += 1
            class_counts["div"] += 1
        elif opcode == "adds":
            full = read_op(inst.uses[0], srcs) + read_op(inst.uses[1], srcs)
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_reg(_CARRY, full >> 32, comp)
            write_op(dest, full & 0xFFFFFFFF, comp)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "adc":
            full = (
                read_op(inst.uses[0], srcs)
                + read_op(inst.uses[1], srcs)
                + read_carry(srcs)
            )
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_reg(_CARRY, full >> 32, comp)
            write_op(dest, full & 0xFFFFFFFF, comp)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "subs":
            a = read_op(inst.uses[0], srcs)
            b = read_op(inst.uses[1], srcs)
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_reg(_CARRY, 1 if a >= b else 0, comp)
            write_op(dest, (a - b) & 0xFFFFFFFF, comp)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "sbc":
            a = read_op(inst.uses[0], srcs)
            b = read_op(inst.uses[1], srcs)
            full = a - b - (1 - read_carry(srcs))
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_reg(_CARRY, 1 if full >= 0 else 0, comp)
            write_op(dest, full & 0xFFFFFFFF, comp)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "addsl":
            base = read_op(inst.uses[0], srcs)
            index = read_op(inst.uses[1], srcs)
            shift = inst.uses[2].value
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_op(dest, (base + (index << shift)) & 0xFFFFFFFF, comp)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "orrsl":
            a = read_op(inst.uses[0], srcs)
            b = read_op(inst.uses[1], srcs)
            shift = inst.uses[2].value
            shifted = (b << shift) & 0xFFFFFFFF if shift >= 0 else b >> (-shift)
            dest = inst.defs[0]
            merge_dep(dest, srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            write_op(dest, a | shifted, comp)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "bl":
            comp = finish(disp, srcs, alu_pool, 1)
            write_reg(14, pc + 1, disp)  # link value known at rename
            ras_top = (ras_top + 1) % params.ras
            ras[ras_top] = pc + 1
            if ras_count < params.ras:
                ras_count += 1
            next_pc = inst.target
            result.branches += 1
            result.taken_branches += 1
            class_counts["branch"] += 1
            fq_time += 1
            fq_used = 0
        elif opcode == "bx":
            stats.checkpoints += 1
            counters.ckpt_ops += 1
            p = rmap[14]
            srcs.append(ready[p])
            target = prf[p]
            if fx is not None and type(target) is not int:
                target = 0
            if ras_count > 0:
                predicted = ras[ras_top]
                ras_top = (ras_top - 1) % params.ras
                ras_count -= 1
            else:
                predicted = None
            comp = finish(disp, srcs, alu_pool, 1)
            next_pc = target
            result.branches += 1
            result.taken_branches += 1
            class_counts["branch"] += 1
            if predicted == target:
                fq_time += 1
                fq_used = 0
            else:
                recover(predicted, fc, comp, "return")
        elif opcode == "subspi":
            p = rmap[13]
            srcs.append(ready[p])
            sp = prf[p]
            if fx is not None and type(sp) is not int:
                sp = 0
            comp = finish(disp, srcs, alu_pool, 1)
            write_reg(13, (sp - inst.uses[0].value) & 0xFFFFFFFF, comp)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "addspi":
            p = rmap[13]
            srcs.append(ready[p])
            sp = prf[p]
            if fx is not None and type(sp) is not int:
                sp = 0
            comp = finish(disp, srcs, alu_pool, 1)
            write_reg(13, (sp + inst.uses[0].value) & 0xFFFFFFFF, comp)
            counters.alu32_ops += 1
            class_counts["alu32"] += 1
        elif opcode == "out":
            value = read_op(inst.uses[0], srcs)
            comp = finish(disp, srcs, alu_pool, 1)
            result.output.append(value)
            counters.move_ops += 1
            class_counts["move"] += 1
        elif opcode == "nop" or opcode == "mode":
            comp = finish(disp, srcs, alu_pool, 1)
            class_counts["move"] += 1
        else:
            raise MachineError(f"unknown opcode {opcode!r} at {pc}")
        retire(comp)
        pc = next_pc

    result.instructions = instructions
    result.cycles = last_ct
    result.misspeculations = misspecs
    counters.cycles = last_ct
    counters.icache_l1 = ic_l1
    counters.icache_l2 = ic_l2
    counters.icache_mem = ic_mem
    counters.dcache_l1 = d_l1
    counters.dcache_l2 = d_l2
    counters.dcache_mem = d_mem
    result.memory = memory
    rv = prf[rmap[0]]
    result.return_value = rv if type(rv) is int else 0
    result.ooo = stats
    return result
