"""Serializable machine snapshots: interruptible simulation with a
proof-grade resume contract.

A :class:`Snapshot` freezes everything a run's future depends on at an
instruction-count boundary — architectural state (registers, flat
memory image, compare/carry flags, the load-use hazard latch), the full
cache-hierarchy state (per-set MRU tag order, hit/miss statistics, the
last-line fast path, DRAM access count), the out-stream, and the
engine's accumulated energy/event accounting — so that

    ``run(checkpoint_at=N)``  +  ``run(resume_from=snapshot)``

is *bit-identical* to one uninterrupted ``run()``: every SimResult
field, including cycles and energy counters, and the final memory
image (``tests/test_checkpoint.py`` pins this across the fuzz corpus
and the workload roster).  The DTS model needs no snapshot state: it is
a post-run scaling of class counts (:mod:`repro.arch.dts`).

Snapshots are engine-tagged.  The legacy interpreter accumulates
aggregate counters incrementally, while the predecoded fast path keeps
per-pc event arrays that only fold into aggregates at halt — the two
in-flight representations are not interconvertible mid-run, so a
snapshot resumes on the engine that took it (a mismatch raises
:class:`SnapshotError` instead of silently diverging).  The batching
engines degrade: requesting ``checkpoint_at``/``resume_from`` on the
``compiled`` or ``ooo`` engine runs the predecoded stepper whole-run,
mirroring how fault injection degrades (docs/resilience.md) — the
in-order trio is bit-identical, and the OoO engine keeps its committed
view through :func:`repro.arch.machine.committed_view`.

On-disk form: canonical JSON with the 4 MiB memory image (and the fast
engine's per-pc arrays) zlib-compressed and base64-armored, written
atomically (temp file + fsync + rename) so a crash mid-save never
leaves a half-written snapshot where a resumable one should be.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.arch.cache import CacheGeometry, MemoryHierarchy

SNAPSHOT_VERSION = 1

#: engines that can take and resume snapshots natively
SNAPSHOT_ENGINES = ("legacy", "fast")


class SnapshotError(Exception):
    """A snapshot cannot be taken, loaded, or resumed as requested."""


def program_fingerprint(linked) -> str:
    """A stable digest of a linked image, cached on the instance.

    Resuming a snapshot on a different binary would silently execute
    garbage; the fingerprint covers everything the machine reads from
    the image — the instruction stream (``MachineInst.__repr__`` is a
    full disassembly), layout scalars, and the mixed-world fallback
    set.
    """
    cached = getattr(linked, "_snapshot_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(
        repr(
            (
                linked.isa,
                linked.delta,
                linked.entry_index,
                linked.inst_bytes,
                linked.slice_width,
                sorted(linked.global_addresses.items()),
                sorted(linked.fallback_functions or ()),
                len(linked.insts),
            )
        ).encode()
    )
    for inst in linked.insts:
        h.update(repr(inst).encode())
        h.update(b"\n")
    digest = h.hexdigest()
    linked._snapshot_fingerprint = digest
    return digest


def _geometry_key(geometry: Optional[CacheGeometry]) -> list:
    g = geometry or CacheGeometry()
    return [g.l1_kb, g.l1_ways, g.l2_kb, g.l2_ways]


def _cache_state(cache) -> dict:
    return {
        "lines": [list(ways) for ways in cache._lines],
        "accesses": cache.stats.accesses,
        "misses": cache.stats.misses,
        "last_line": cache._last_line,
    }


def _restore_cache(cache, state: dict) -> None:
    if len(state["lines"]) != cache.sets:
        raise SnapshotError(
            f"{cache.name}: snapshot has {len(state['lines'])} sets, "
            f"geometry expects {cache.sets}"
        )
    cache._lines = [list(ways) for ways in state["lines"]]
    cache.stats.accesses = state["accesses"]
    cache.stats.misses = state["misses"]
    cache._last_line = state["last_line"]


def capture_hierarchy(hierarchy: MemoryHierarchy) -> dict:
    """Freeze a :class:`MemoryHierarchy` (tag order, stats, fast path)."""
    return {
        "icache": _cache_state(hierarchy.icache),
        "dcache": _cache_state(hierarchy.dcache),
        "l2": _cache_state(hierarchy.l2),
        "dram_accesses": hierarchy.dram_accesses,
    }


def restore_hierarchy(
    state: dict, geometry: Optional[CacheGeometry]
) -> MemoryHierarchy:
    hierarchy = MemoryHierarchy(geometry)
    _restore_cache(hierarchy.icache, state["icache"])
    _restore_cache(hierarchy.dcache, state["dcache"])
    _restore_cache(hierarchy.l2, state["l2"])
    hierarchy.dram_accesses = state["dram_accesses"]
    return hierarchy


@dataclass
class Snapshot:
    """A resumable machine state at an instruction-count boundary."""

    engine: str
    fingerprint: str
    #: instructions retired before the boundary (== resume position)
    instructions: int
    pc: int
    regs: list
    cmp_state: tuple
    carry: int
    last_load_reg: int
    output: list
    memory_data: bytes
    hierarchy: dict
    geometry: list
    slice_width: int
    #: engine-specific accounting: the legacy interpreter's running
    #: aggregates, or the fast path's per-pc event arrays
    state: dict
    version: int = SNAPSHOT_VERSION

    def check_resume(self, machine, engine: str) -> None:
        """Reject a resume that could not be bit-identical."""
        if self.version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {self.version} != {SNAPSHOT_VERSION}"
            )
        if engine != self.engine:
            raise SnapshotError(
                f"snapshot was taken on the {self.engine!r} engine and "
                f"cannot resume on {engine!r}: the engines' in-flight "
                f"accounting is not interconvertible"
            )
        if program_fingerprint(machine.linked) != self.fingerprint:
            raise SnapshotError(
                "snapshot was taken from a different linked program"
            )
        if _geometry_key(machine.geometry) != list(self.geometry):
            raise SnapshotError(
                f"snapshot cache geometry {self.geometry} != machine "
                f"geometry {_geometry_key(machine.geometry)}"
            )
        if machine.slice_width != self.slice_width:
            raise SnapshotError(
                f"snapshot slice width {self.slice_width} != machine "
                f"slice width {machine.slice_width}"
            )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON form (memory zlib+base64, sorted keys)."""
        return {
            "version": self.version,
            "engine": self.engine,
            "fingerprint": self.fingerprint,
            "instructions": self.instructions,
            "pc": self.pc,
            "regs": list(self.regs),
            "cmp_state": list(self.cmp_state),
            "carry": self.carry,
            "last_load_reg": self.last_load_reg,
            "output": list(self.output),
            "memory_zb64": base64.b64encode(
                zlib.compress(bytes(self.memory_data), 6)
            ).decode("ascii"),
            "memory_len": len(self.memory_data),
            "hierarchy": self.hierarchy,
            "geometry": list(self.geometry),
            "slice_width": self.slice_width,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Snapshot":
        try:
            memory = zlib.decompress(base64.b64decode(doc["memory_zb64"]))
            if len(memory) != doc["memory_len"]:
                raise SnapshotError(
                    f"memory image is {len(memory)} bytes, header says "
                    f"{doc['memory_len']}"
                )
            state = doc["state"]
            # JSON round-trips the int-keyed rf width maps as strings
            for key in ("rf_reads", "rf_writes"):
                if key in state:
                    state[key] = {int(k): v for k, v in state[key].items()}
            return cls(
                engine=doc["engine"],
                fingerprint=doc["fingerprint"],
                instructions=doc["instructions"],
                pc=doc["pc"],
                regs=list(doc["regs"]),
                cmp_state=tuple(doc["cmp_state"]),
                carry=doc["carry"],
                last_load_reg=doc["last_load_reg"],
                output=list(doc["output"]),
                memory_data=memory,
                hierarchy=doc["hierarchy"],
                geometry=list(doc["geometry"]),
                slice_width=doc["slice_width"],
                state=state,
                version=doc["version"],
            )
        except SnapshotError:
            raise
        except (KeyError, TypeError, ValueError, zlib.error) as exc:
            raise SnapshotError(f"malformed snapshot document: {exc}") from exc

    def save(self, path: str) -> None:
        """Atomically write the snapshot (temp file + fsync + rename)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"cannot load snapshot {path}: {exc}") from exc
        if not isinstance(doc, dict):
            raise SnapshotError(f"cannot load snapshot {path}: not an object")
        return cls.from_dict(doc)


def make_snapshot(
    machine,
    engine: str,
    *,
    instructions: int,
    pc: int,
    regs: list,
    cmp_state: tuple,
    carry: int,
    last_load_reg: int,
    output: list,
    memory,
    hierarchy: MemoryHierarchy,
    state: dict,
) -> Snapshot:
    """Freeze the live loop state into an owning :class:`Snapshot`.

    Every mutable input is copied — the snapshot must stay valid if the
    caller keeps executing (e.g. taking several snapshots in one run).
    """
    return Snapshot(
        engine=engine,
        fingerprint=program_fingerprint(machine.linked),
        instructions=instructions,
        pc=pc,
        regs=list(regs),
        cmp_state=tuple(cmp_state),
        carry=carry,
        last_load_reg=last_load_reg,
        output=list(output),
        memory_data=bytes(memory.data),
        hierarchy=capture_hierarchy(hierarchy),
        geometry=_geometry_key(machine.geometry),
        slice_width=machine.slice_width,
        state=state,
    )
