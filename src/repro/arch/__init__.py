"""Microarchitecture substrate: caches, machine model, energy, DTS."""

from repro.arch.cache import Cache, CacheStats, MemoryHierarchy
from repro.arch.dts import BITWIDTH_AWARE_SLACK, DTSModel, SLACK_PROFILE
from repro.arch.energy import (
    COMPONENTS,
    COSTS,
    EnergyBreakdown,
    EnergyCounters,
    compute_energy,
)
from repro.arch.machine import Machine, MachineError, SimResult

__all__ = [
    "BITWIDTH_AWARE_SLACK",
    "COMPONENTS",
    "COSTS",
    "Cache",
    "CacheStats",
    "DTSModel",
    "EnergyBreakdown",
    "EnergyCounters",
    "Machine",
    "MachineError",
    "MemoryHierarchy",
    "SLACK_PROFILE",
    "SimResult",
    "compute_energy",
]
