"""Behavioral machine model: executes a linked program while accounting
events for the energy/timing model (the Gem5 + gate-level sampling flow of
§4.1, collapsed into one behavioral simulator — see DESIGN.md).

Models the paper's pipeline at event granularity:

* 6-stage in-order single-issue timing: 1 cycle/instruction plus hazard,
  branch-flush and memory-miss stalls;
* a register file with byte-slice access on the BITSPEC ISA (reads/writes
  counted at their width — the 1/4-energy slice accesses of RQ1) and
  32-bit-only access on baseline ARM/Thumb;
* the segmented ALU's misspeculation detection: a speculative op whose
  result leaves its 8-bit slice does not write back; instead the PC is
  advanced by the Δ special register, landing in the skeleton area which
  branches to the region's handler (§3.3.4, §3.5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.cache import CacheGeometry, MemoryHierarchy
from repro.arch.energy import EnergyBreakdown, EnergyCounters, compute_energy
from repro.arch.widths import BYTE_MASKS as _MASKS, slice_mask
from repro.backend.layout import LinkedProgram
from repro.backend.mir import Imm, MachineInst, Slice
from repro.interp.interpreter import evaluate_icmp
from repro.interp.memory import FlatMemory, STACK_TOP, initialize_globals
from repro.ir.function import Module
from repro.ir.types import int_type

# Return-address sentinel: survives the 32-bit masking of stack save/restore.
HALT = 0xFFFFFFFF

_DIV_OPS = {"udiv", "sdiv", "urem", "srem"}

#: instruction classes for the DTS timing-slack model (RQ8)
DTS_CLASSES = ("alu32", "alu8", "mul", "div", "move", "mem", "branch")


class MachineError(Exception):
    """The machine executed an illegal instruction or address."""


class FaultTrap(MachineError):
    """An injected fault was caught by a hardware check (e.g. parity).

    Raised by a :class:`repro.faults.session.FaultSession` hook, never by
    the machine itself; defined here so the machine layer stays free of
    any dependency on :mod:`repro.faults`.
    """


@dataclass
class SimResult:
    """Everything a simulation run produces."""

    output: list = field(default_factory=list)
    instructions: int = 0
    cycles: int = 0
    misspeculations: int = 0
    branches: int = 0
    taken_branches: int = 0
    #: dynamic register-allocator artifacts (Fig 10)
    spill_stores: int = 0
    spill_loads: int = 0
    copies: int = 0
    loads: int = 0
    stores: int = 0
    counters: EnergyCounters = field(default_factory=EnergyCounters)
    #: dynamic instruction mix for the DTS model
    class_counts: dict = field(default_factory=lambda: {c: 0 for c in DTS_CLASSES})
    memory: Optional[FlatMemory] = None
    return_value: int = 0
    #: speculative slice width (bits) the binary was compiled for — scales
    #: the slice-ALU energy cost; 8 for every legacy/default configuration
    slice_width: int = 8
    #: per-pc observability sample (:class:`repro.obs.events.PcSample`);
    #: populated only when the Machine ran with ``obs=True``
    obs: Optional[object] = None
    #: out-of-order execution statistics
    #: (:class:`repro.arch.ooo.OooStats`); populated only by the ``ooo``
    #: engine — like ``cycles`` and ``counters`` it is timing-model
    #: state, outside the committed architectural contract
    ooo: Optional[object] = None

    def energy(self, scale: Optional[dict] = None) -> EnergyBreakdown:
        return compute_energy(
            self.counters, scale=scale, slice_bits=self.slice_width
        )

    @property
    def epi(self) -> float:
        """Energy per instruction (pJ)."""
        if not self.instructions:
            return 0.0
        return self.energy().total / self.instructions


#: recognized values for ``Machine(engine=...)`` / ``REPRO_MACHINE_ENGINE``
ENGINES = ("legacy", "fast", "compiled", "ooo")

#: engines whose results are bit-identical in *every* SimResult field —
#: the in-order timing model.  The ``ooo`` engine shares the committed
#: architectural contract (:data:`COMMITTED_FIELDS`) but has its own
#: cycle/energy model.
INORDER_ENGINES = ("legacy", "fast", "compiled")

#: SimResult fields in the engine-independent architectural contract
#: (docs/engines.md): identical across all four engines, bit-for-bit.
#: ``cycles``, the energy ``counters`` and the ``obs``/``ooo`` samples
#: are timing-model state and deliberately excluded.
COMMITTED_FIELDS = (
    "output",
    "instructions",
    "misspeculations",
    "branches",
    "taken_branches",
    "spill_stores",
    "spill_loads",
    "copies",
    "loads",
    "stores",
    "class_counts",
    "return_value",
    "slice_width",
)


def committed_view(sim: SimResult) -> dict:
    """The engine-independent slice of a :class:`SimResult`.

    Two engines agree architecturally iff their committed views compare
    equal — the comparator shared by ``tests/test_engine_equivalence.py``,
    the ``engines`` fuzz oracle lane and the serve cross-check.
    """
    view = {f: getattr(sim, f) for f in COMMITTED_FIELDS}
    view["memory"] = None if sim.memory is None else sim.memory.data
    return view


def default_engine() -> str:
    """The engine a ``Machine(engine=None)`` run resolves to from the
    environment alone, ignoring per-run overrides (``obs``, ``fast=``,
    trace hooks).  Used by cache layers to partition on timing model."""
    env = os.environ.get("REPRO_MACHINE_ENGINE", "").strip().lower()
    if env:
        if env not in ENGINES:
            raise ValueError(
                f"REPRO_MACHINE_ENGINE={env!r}: expected one of {ENGINES}"
            )
        return env
    if os.environ.get("REPRO_MACHINE_LEGACY", "") == "1":
        return "legacy"
    return "fast"


def timing_model(engine: Optional[str]) -> str:
    """``"inorder"``, or ``"ooo:..."`` with the resolved structure sizes
    when the (resolved) engine carries its own cycle/energy model.  The
    bench disk cache partitions its keys on this — in-order records stay
    interchangeable across the three bit-identical engines, while OoO
    records never alias them *or* each other across different
    ``REPRO_OOO_*`` geometries (an 8-entry-ROB run must not serve a
    48-entry lookup).  DSE documents stamp the same string as their
    ``timing_model``, so an OoO sweep records exactly which machine it
    measured."""
    if (engine or default_engine()) != "ooo":
        return "inorder"
    from repro.arch.ooo import ooo_params

    p = ooo_params()
    return f"ooo:rob{p.rob}-iq{p.iq}-w{p.width}-bp{p.bp_bits}-ras{p.ras}"


def parse_engine_list(spec: str) -> tuple:
    """Parse a comma-separated engine selection (``"fast,compiled"``).

    The shared validator behind every engine-list surface (the pytest
    ``--engines`` option, CLI flags): unknown names and empty selections
    fail loudly with the valid set spelled out, instead of silently
    selecting nothing.
    """
    engines = tuple(e.strip() for e in spec.split(",") if e.strip())
    if not engines:
        raise ValueError(
            f"empty engine selection {spec!r}: expected a comma-separated "
            f"subset of {ENGINES}"
        )
    unknown = [e for e in engines if e not in ENGINES]
    if unknown:
        raise ValueError(
            f"unknown engines {unknown}: expected a comma-separated "
            f"subset of {ENGINES}"
        )
    return engines


class Machine:
    """Executes a :class:`LinkedProgram`.

    Three execution engines produce bit-identical results (the contract
    is documented in docs/engines.md and enforced differentially by
    ``tests/test_engine_equivalence.py``):

    * the *fast path* (default): the program is predecoded once into dense
      tuples with an integer-dispatch loop and batched energy counters
      (:mod:`repro.arch.predecode`);
    * the *compiled engine*: a block-specialized template JIT that
      translates the predecoded program into straight-line Python per
      basic-block region (:mod:`repro.arch.compiled`); select it with
      ``engine="compiled"`` or ``REPRO_MACHINE_ENGINE=compiled``;
    * the *legacy path*: the original instruction-at-a-time interpreter,
      kept as the differential-testing reference and used automatically
      when a ``trace_hook`` needs per-step callbacks;
    * the *ooo engine*: an R10K-style out-of-order core model
      (:mod:`repro.arch.ooo`) — bit-identical in the committed
      architectural contract (:data:`COMMITTED_FIELDS`) but with its own
      cycle count and energy events; select it with ``engine="ooo"`` or
      ``REPRO_MACHINE_ENGINE=ooo``.

    Engine selection precedence: an explicit ``engine=`` argument, then
    the boolean ``fast=`` compatibility argument, then the
    ``REPRO_MACHINE_ENGINE`` environment variable, then the historical
    defaults (``fast=None`` selects the fast path unless a trace hook is
    installed or ``REPRO_MACHINE_LEGACY=1`` is set in the environment).

    ``obs=True`` attaches a per-pc event sample to ``SimResult.obs`` for
    :mod:`repro.obs`.  Observability is a fast-path feature: the sample
    is the loop's own batched per-pc counters, so it forces the fast
    engine rather than falling back to the legacy interpreter (the two
    engines are bit-identical, so this never changes results).
    """

    def __init__(
        self,
        linked: LinkedProgram,
        module: Module,
        *,
        step_limit: int = 400_000_000,
        trace_hook=None,
        fast: Optional[bool] = None,
        obs: bool = False,
        geometry: Optional[CacheGeometry] = None,
        faults=None,
        engine: Optional[str] = None,
    ) -> None:
        self.linked = linked
        self.module = module
        self.step_limit = step_limit
        #: optional :class:`repro.faults.session.FaultSession`; both
        #: engines consult it behind one ``is not None`` guard per step
        self.faults = faults
        self.narrow_rf = linked.isa == "ARM_BS"
        #: speculative slice width in bits, stamped on the linked image
        self.slice_width = getattr(linked, "slice_width", 8)
        #: values above this mask misspeculate in ``bs_*`` ops (§3.5)
        self.spec_mask = slice_mask(self.slice_width)
        #: cache hierarchy configuration (None = the paper's §4.1 geometry)
        self.geometry = geometry
        #: optional debug callback: trace_hook(pc, regs) before each step
        self.trace_hook = trace_hook
        self.fast = fast
        #: collect a per-pc PcSample on SimResult.obs (fast path only)
        self.obs = obs
        if engine is not None and engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}: expected one of {ENGINES}"
            )
        #: explicit engine selection ("legacy" / "fast" / "compiled");
        #: None resolves at run() time (env vars, fast=, obs, trace_hook)
        self.engine = engine

    def resolve_engine(self) -> str:
        """The engine :meth:`run` will use, after all defaulting rules."""
        if self.engine is not None:
            return self.engine
        if self.fast is True:
            return "fast"
        if self.fast is False:
            return "legacy"
        env = os.environ.get("REPRO_MACHINE_ENGINE", "").strip().lower()
        if env:
            if env not in ENGINES:
                raise ValueError(
                    f"REPRO_MACHINE_ENGINE={env!r}: expected one of {ENGINES}"
                )
            if env in ("legacy", "ooo") and self.obs:
                # obs is a batching-path feature; the env default cannot
                # force an engine that cannot produce a PcSample
                return "fast"
            return env
        if self.obs:
            return "fast"
        if self.trace_hook is not None:
            return "legacy"
        if os.environ.get("REPRO_MACHINE_LEGACY", "") == "1":
            return "legacy"
        return "fast"

    def run(self, *, checkpoint_at=None, resume_from=None) -> SimResult:
        """Execute the program; returns a :class:`SimResult`.

        ``checkpoint_at=N`` stops at the first instruction-count
        boundary ``>= N`` and returns a
        :class:`repro.arch.checkpoint.Snapshot` instead (or a normal
        SimResult when the program halts first); ``resume_from``
        continues a snapshot.  ``run(checkpoint_at=N)`` +
        ``run(resume_from=snap)`` is bit-identical to one uninterrupted
        run (docs/resilience.md).  The ``compiled`` and ``ooo`` engines
        have no mid-run boundary and degrade to the predecoded stepper
        whole-run, exactly as fault injection does.
        """
        engine = self.resolve_engine()
        if checkpoint_at is not None or resume_from is not None:
            if self.faults is not None:
                raise ValueError(
                    "checkpoint/resume does not compose with fault "
                    "injection: a FaultSession is positional in the "
                    "dynamic stream and cannot be split across runs"
                )
            if checkpoint_at is not None and checkpoint_at < 0:
                raise ValueError("checkpoint_at must be >= 0")
            if engine in ("compiled", "ooo"):
                # degradation ladder: the batching/OoO engines cannot
                # stop at an instruction boundary; the predecoded
                # stepper is bit-identical in the committed contract
                engine = "fast"
        if engine == "compiled":
            if self.trace_hook is not None:
                raise ValueError("trace_hook requires the legacy path")
            from repro.arch.compiled import run_compiled

            return run_compiled(self)
        if engine == "ooo":
            if self.trace_hook is not None:
                raise ValueError("trace_hook requires the legacy path")
            from repro.arch.ooo import run_ooo

            return run_ooo(self)
        if engine == "fast":
            if self.trace_hook is not None:
                raise ValueError("trace_hook requires the legacy path")
            from repro.arch.predecode import run_fast

            return run_fast(
                self, checkpoint_at=checkpoint_at, resume_from=resume_from
            )
        if self.obs:
            raise ValueError("obs=True requires the predecoded fast path")
        return self._run_legacy(
            checkpoint_at=checkpoint_at, resume_from=resume_from
        )

    def _run_legacy(self, checkpoint_at=None, resume_from=None) -> SimResult:
        linked = self.linked
        insts = linked.insts
        delta = linked.delta
        inst_bytes = linked.inst_bytes
        result = SimResult(slice_width=self.slice_width)
        counters = result.counters
        rf_reads = counters.rf_reads_by_width
        rf_writes = counters.rf_writes_by_width
        class_counts = result.class_counts
        hierarchy = MemoryHierarchy(self.geometry)
        fetch = hierarchy.fetch
        data_access = hierarchy.data_access

        memory = FlatMemory()
        initialize_globals(memory, self.module, linked.global_addresses)
        mem_load = memory.load
        mem_store = memory.store

        regs = [0] * 16
        regs[13] = STACK_TOP
        regs[14] = HALT
        cmp_state = (0, 0, 4)  # (lhs, rhs, width-or-64)
        carry = 0
        narrow_rf = self.narrow_rf
        base_narrow = narrow_rf
        #: mixed-world binaries: functions that fell back to BASELINE
        #: codegen access the register file at full width even on ARM_BS
        fallback = getattr(linked, "fallback_functions", None) or None
        owner = linked.owner if fallback else None
        fx = self.faults

        pc = linked.entry_index
        steps = 0
        cycles = 0
        instructions = 0
        misspecs = 0
        last_load_reg = -1
        out_l1 = out_l2 = out_mem = 0  # dcache level counters
        ic_l1 = ic_l2 = ic_mem = 0

        if resume_from is not None:
            from repro.arch.checkpoint import restore_hierarchy

            snap = resume_from
            snap.check_resume(self, "legacy")
            hierarchy = restore_hierarchy(snap.hierarchy, self.geometry)
            fetch = hierarchy.fetch
            data_access = hierarchy.data_access
            memory.data[:] = snap.memory_data
            regs[:] = snap.regs
            cmp_state = tuple(snap.cmp_state)
            carry = snap.carry
            last_load_reg = snap.last_load_reg
            pc = snap.pc
            steps = instructions = snap.instructions
            state = snap.state
            cycles = state["cycles"]
            misspecs = state["misspeculations"]
            ic_l1, ic_l2, ic_mem = state["ic_l1"], state["ic_l2"], state["ic_mem"]
            out_l1, out_l2, out_mem = (
                state["out_l1"], state["out_l2"], state["out_mem"]
            )
            result.output[:] = snap.output
            result.branches = state["branches"]
            result.taken_branches = state["taken_branches"]
            result.spill_stores = state["spill_stores"]
            result.spill_loads = state["spill_loads"]
            result.copies = state["copies"]
            result.stores = state["stores"]
            result.loads = state["loads"]
            class_counts.update(state["class_counts"])
            rf_reads.update({int(k): v for k, v in state["rf_reads"].items()})
            rf_writes.update({int(k): v for k, v in state["rf_writes"].items()})
            counters.alu32_ops = state["alu32_ops"]
            counters.alu8_ops = state["alu8_ops"]
            counters.mul_ops = state["mul_ops"]
            counters.div_ops = state["div_ops"]
            counters.move_ops = state["move_ops"]

        def read(op):
            if type(op) is Slice:
                size = op.size if op.size <= 4 else 4
                width = size if narrow_rf else 4
                rf_reads[width] = rf_reads.get(width, 0) + 1
                return (regs[op.reg] >> (op.offset * 8)) & _MASKS[size]
            if type(op) is Imm:
                return op.value & 0xFFFFFFFF
            if op == "sp":
                rf_reads[4] += 1
                return regs[13]
            raise MachineError(f"cannot read operand {op!r}")

        def write(op, value):
            if type(op) is Slice:
                size = op.size if op.size <= 4 else 4
                width = size if narrow_rf else 4
                rf_writes[width] = rf_writes.get(width, 0) + 1
                shift = op.offset * 8
                mask = _MASKS[size] << shift
                regs[op.reg] = (regs[op.reg] & ~mask & 0xFFFFFFFF) | (
                    (value & _MASKS[size]) << shift
                )
            else:
                raise MachineError(f"cannot write operand {op!r}")

        def dmem(addr, level_counts=True):
            """Record a data access; returns extra stall cycles."""
            nonlocal out_l1, out_l2, out_mem
            level = data_access(addr)
            if level == "l1":
                out_l1 += 1
                return 1
            if level == "l2":
                out_l2 += 1
                return 10
            out_mem += 1
            return 70

        limit = self.step_limit
        trace_hook = self.trace_hook
        while pc != HALT:
            if checkpoint_at is not None and instructions >= checkpoint_at:
                from repro.arch.checkpoint import make_snapshot

                return make_snapshot(
                    self, "legacy",
                    instructions=instructions, pc=pc, regs=regs,
                    cmp_state=cmp_state, carry=carry,
                    last_load_reg=last_load_reg, output=result.output,
                    memory=memory, hierarchy=hierarchy,
                    state={
                        "cycles": cycles,
                        "misspeculations": misspecs,
                        "ic_l1": ic_l1, "ic_l2": ic_l2, "ic_mem": ic_mem,
                        "out_l1": out_l1, "out_l2": out_l2,
                        "out_mem": out_mem,
                        "branches": result.branches,
                        "taken_branches": result.taken_branches,
                        "spill_stores": result.spill_stores,
                        "spill_loads": result.spill_loads,
                        "copies": result.copies,
                        "loads": result.loads,
                        "stores": result.stores,
                        "class_counts": dict(class_counts),
                        "rf_reads": dict(rf_reads),
                        "rf_writes": dict(rf_writes),
                        "alu32_ops": counters.alu32_ops,
                        "alu8_ops": counters.alu8_ops,
                        "mul_ops": counters.mul_ops,
                        "div_ops": counters.div_ops,
                        "move_ops": counters.move_ops,
                    },
                )
            if not 0 <= pc < len(insts):
                raise MachineError(f"pc out of range: {pc}")
            if trace_hook is not None:
                trace_hook(pc, regs)
            inst = insts[pc]
            steps += 1
            if steps > limit:
                raise MachineError("machine step limit exceeded")
            if fx is not None:
                if fx.on_step(steps, pc, regs, memory) is not None:
                    # corrupted fetch: the slot executes as a bubble
                    instructions += 1
                    cycles += 1
                    last_load_reg = -1
                    pc = pc + 1
                    continue
            if owner is not None:
                narrow_rf = base_narrow and owner[pc] not in fallback
            # instruction fetch
            level = fetch(pc * inst_bytes)
            if level == "l1":
                ic_l1 += 1
            elif level == "l2":
                ic_l2 += 1
                cycles += 10
            else:
                ic_mem += 1
                cycles += 70
            instructions += 1
            cycles += 1
            opcode = inst.opcode
            # load-use hazard: one bubble when a load's result is consumed
            # by the immediately following instruction
            if last_load_reg >= 0:
                for op in inst.uses:
                    if type(op) is Slice and op.reg == last_load_reg:
                        cycles += 1
                        break
                last_load_reg = -1
            kind = inst.kind
            if kind:
                if kind == "copy":
                    result.copies += 1
                elif kind == "reload":
                    result.spill_loads += 1
                elif kind == "spill":
                    result.spill_stores += 1
            next_pc = pc + 1

            if opcode == "mov" or opcode == "movi":
                write(inst.defs[0], read(inst.uses[0]))
                counters.move_ops += 1
                class_counts["move"] += 1
            elif opcode in ("ldr", "ldrb", "ldrh"):
                base = read(inst.uses[0])
                disp = inst.uses[1].value if len(inst.uses) > 1 else 0
                addr = (base + disp) & 0xFFFFFFFF
                size = {"ldr": 4, "ldrb": 1, "ldrh": 2}[opcode]
                value = mem_load(addr, size)
                dest = inst.defs[0]
                write(dest, value)
                cycles += dmem(addr)
                result.loads += 1
                class_counts["mem"] += 1
                last_load_reg = dest.reg
            elif opcode in ("str", "strb", "strh"):
                value = read(inst.uses[0])
                base = read(inst.uses[1])
                disp = inst.uses[2].value if len(inst.uses) > 2 else 0
                addr = (base + disp) & 0xFFFFFFFF
                size = {"str": 4, "strb": 1, "strh": 2}[opcode]
                mem_store(addr, value, size)
                dmem(addr)
                result.stores += 1
                class_counts["mem"] += 1
            elif opcode in ("add", "sub", "and", "orr", "eor", "lsl", "lsr", "asr"):
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                width = inst.width
                mask = _MASKS.get(width, 0xFFFFFFFF)
                if opcode == "add":
                    value = (a + b) & mask
                elif opcode == "sub":
                    value = (a - b) & mask
                elif opcode == "and":
                    value = a & b
                elif opcode == "orr":
                    value = a | b
                elif opcode == "eor":
                    value = a ^ b
                elif opcode == "lsl":
                    value = (a << b) & mask if b < 32 else 0
                elif opcode == "lsr":
                    value = (a >> b) if b < 32 else 0
                else:  # asr
                    bits = width * 8
                    ty = int_type(bits)
                    shift = min(b, bits - 1)
                    value = ty.wrap(ty.to_signed(a) >> shift)
                write(inst.defs[0], value)
                if narrow_rf and width == 1:
                    counters.alu8_ops += 1
                    class_counts["alu8"] += 1
                else:
                    counters.alu32_ops += 1
                    class_counts["alu32"] += 1
            elif opcode == "bs_ldr":
                # Speculative load (Table 1): full-width read, narrow result,
                # misspeculate when the value does not fit the slice.
                addr = read(inst.uses[0])
                size = inst.uses[1].value
                value = mem_load(addr, size)
                cycles += dmem(addr)
                result.loads += 1
                counters.alu8_ops += 1
                class_counts["alu8"] += 1
                miss = value > self.spec_mask
                if fx is not None:
                    miss = fx.spec_outcome(miss)
                if miss:
                    misspecs += 1
                    cycles += 3
                    next_pc = pc + delta if fx is None else fx.redirect(pc, delta)
                else:
                    write(inst.defs[0], value)
                    last_load_reg = inst.defs[0].reg
            elif opcode.startswith("bs_"):
                taken = self._exec_bitspec(
                    inst, read, write, counters, class_counts, fx
                )
                if taken == "misspec":
                    misspecs += 1
                    cycles += 3
                    next_pc = pc + delta if fx is None else fx.redirect(pc, delta)
                elif isinstance(taken, tuple):
                    cmp_state = taken
            elif opcode == "cmp":
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                cmp_state = (a, b, inst.width)
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "cmp64hi":
                cmp_state = (read(inst.uses[0]), read(inst.uses[1]), "hi")
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "cmp64lo":
                a_hi, b_hi, tag = cmp_state
                a = (a_hi << 32) | read(inst.uses[0])
                b = (b_hi << 32) | read(inst.uses[1])
                cmp_state = (a, b, 8)
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "b":
                next_pc = inst.target
                result.branches += 1
                result.taken_branches += 1
                cycles += 2
                class_counts["branch"] += 1
            elif opcode == "bcond":
                a, b, width = cmp_state
                ty = int_type(64 if width == 8 else width * 8)
                result.branches += 1
                class_counts["branch"] += 1
                if evaluate_icmp(inst.cond, a, b, ty):
                    next_pc = inst.target
                    result.taken_branches += 1
                    cycles += 2
            elif opcode == "movcond":
                a, b, width = cmp_state
                ty = int_type(64 if width == 8 else width * 8)
                if evaluate_icmp(inst.cond, a, b, ty):
                    write(inst.defs[0], read(inst.uses[0]))
                counters.move_ops += 1
                class_counts["move"] += 1
            elif opcode in ("uxt", "sxt", "trunc"):
                src = inst.uses[0]
                value = read(src)
                if opcode == "sxt":
                    src_bits = (src.size if type(src) is Slice else 4) * 8
                    value = int_type(src_bits).to_signed(value) & 0xFFFFFFFF
                write(inst.defs[0], value)
                if narrow_rf and inst.width == 1:
                    counters.alu8_ops += 1
                    class_counts["alu8"] += 1
                else:
                    counters.move_ops += 1
                    class_counts["move"] += 1
            elif opcode == "mul":
                value = (read(inst.uses[0]) * read(inst.uses[1])) & _MASKS.get(
                    inst.width, 0xFFFFFFFF
                )
                write(inst.defs[0], value)
                counters.mul_ops += 1
                class_counts["mul"] += 1
                cycles += 2
            elif opcode == "umull":
                product = read(inst.uses[0]) * read(inst.uses[1])
                write(inst.defs[0], product & 0xFFFFFFFF)
                write(inst.defs[1], (product >> 32) & 0xFFFFFFFF)
                counters.mul_ops += 1
                class_counts["mul"] += 1
                cycles += 3
            elif opcode in _DIV_OPS:
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                bits = inst.width * 8
                ty = int_type(bits)
                if b == 0:
                    raise MachineError("division by zero")
                if opcode == "udiv":
                    value = a // b
                elif opcode == "urem":
                    value = a % b
                else:
                    sa, sb = ty.to_signed(a), ty.to_signed(b)
                    q = abs(sa) // abs(sb)
                    r = abs(sa) % abs(sb)
                    if opcode == "sdiv":
                        value = ty.wrap(-q if (sa < 0) != (sb < 0) else q)
                    else:
                        value = ty.wrap(-r if sa < 0 else r)
                write(inst.defs[0], ty.wrap(value))
                counters.div_ops += 1
                class_counts["div"] += 1
                cycles += 11
            elif opcode == "adds":
                full = read(inst.uses[0]) + read(inst.uses[1])
                carry = full >> 32
                write(inst.defs[0], full & 0xFFFFFFFF)
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "adc":
                full = read(inst.uses[0]) + read(inst.uses[1]) + carry
                carry = full >> 32
                write(inst.defs[0], full & 0xFFFFFFFF)
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "subs":
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                carry = 1 if a >= b else 0
                write(inst.defs[0], (a - b) & 0xFFFFFFFF)
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "sbc":
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                full = a - b - (1 - carry)
                carry = 1 if full >= 0 else 0
                write(inst.defs[0], full & 0xFFFFFFFF)
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "addsl":
                base = read(inst.uses[0])
                index = read(inst.uses[1])
                shift = inst.uses[2].value
                write(inst.defs[0], (base + (index << shift)) & 0xFFFFFFFF)
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "orrsl":
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                shift = inst.uses[2].value
                shifted = (b << shift) & 0xFFFFFFFF if shift >= 0 else b >> (-shift)
                write(inst.defs[0], a | shifted)
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "bl":
                lr_stack_value = pc + 1
                regs[14] = lr_stack_value
                next_pc = inst.target
                result.branches += 1
                result.taken_branches += 1
                cycles += 2
                class_counts["branch"] += 1
            elif opcode == "bx":
                next_pc = regs[14]
                result.branches += 1
                result.taken_branches += 1
                cycles += 2
                class_counts["branch"] += 1
            elif opcode == "subspi":
                regs[13] = (regs[13] - inst.uses[0].value) & 0xFFFFFFFF
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "addspi":
                regs[13] = (regs[13] + inst.uses[0].value) & 0xFFFFFFFF
                counters.alu32_ops += 1
                class_counts["alu32"] += 1
            elif opcode == "out":
                result.output.append(read(inst.uses[0]))
                counters.move_ops += 1
                class_counts["move"] += 1
            elif opcode == "nop" or opcode == "mode":
                class_counts["move"] += 1
            else:
                raise MachineError(f"unknown opcode {opcode!r} at {pc}")
            pc = next_pc

        if fx is not None:
            cycles += fx.extra_cycles
        result.instructions = instructions
        result.cycles = cycles
        result.misspeculations = misspecs
        counters.cycles = cycles
        counters.icache_l1 = ic_l1
        counters.icache_l2 = ic_l2
        counters.icache_mem = ic_mem
        counters.dcache_l1 = out_l1
        counters.dcache_l2 = out_l2
        counters.dcache_mem = out_mem
        result.memory = memory
        result.return_value = regs[0]
        return result

    def _exec_bitspec(self, inst, read, write, counters, class_counts, fx=None):
        """Execute one non-memory ``bs_*`` op.

        Returns "misspec", a new cmp_state tuple (for ``bs_cmp``), or None.
        Misspeculation is detected exactly as the segmented ALU does it:
        any carry/borrow/bit leaving the configured slice (§3.5).  ``fx``
        (a fault session) may override the natural verdict; a suppressed
        misspeculation writes back its out-of-slice value, which the
        destination slice mask truncates — exactly the architectural
        effect of a carry-out the hardware failed to flag.
        """
        opcode = inst.opcode
        spec_mask = self.spec_mask
        counters.alu8_ops += 1
        class_counts["alu8"] += 1
        if opcode == "bs_cmp":
            return (read(inst.uses[0]), read(inst.uses[1]), inst.width)
        if opcode == "bs_trunc":
            value = read(inst.uses[0])
            miss = value > spec_mask
            if fx is not None:
                miss = fx.spec_outcome(miss)
            if miss:
                return "misspec"
            write(inst.defs[0], value)
            return None
        if opcode == "bs_trunc_hi":
            miss = read(inst.uses[0]) != 0
            if fx is not None:
                miss = fx.spec_outcome(miss)
            if miss:
                return "misspec"
            return None
        a = read(inst.uses[0])
        b = read(inst.uses[1])
        if opcode == "bs_add":
            wide = a + b
        elif opcode == "bs_sub":
            wide = a - b
        elif opcode == "bs_and":
            wide = a & b
        elif opcode == "bs_orr":
            wide = a | b
        elif opcode == "bs_eor":
            wide = a ^ b
        elif opcode == "bs_lsl":
            wide = (a << b) if b < 32 else 0
        elif opcode == "bs_lsr":
            wide = a >> b if b < 32 else 0
        else:
            raise MachineError(f"unknown speculative opcode {opcode!r}")
        miss = wide < 0 or wide > spec_mask
        if fx is not None:
            miss = fx.spec_outcome(miss)
        if miss:
            return "misspec"
        write(inst.defs[0], wide)
        return None
