"""Compiled simulation engine: a block-specialized template JIT.

The predecoded fast path (:mod:`repro.arch.predecode`) still pays a
Python-level dispatch per dynamic instruction: fetch the pc's tuple,
branch on the integer opcode, decode operand descriptors, bump per-pc
arrays.  This module removes that per-step tax by *translating* the
predecoded program into straight-line Python source, one specialized
function per basic-block region:

* every handler is specialized to its pc — operand registers become
  function locals, immediates/masks/shifts become literals, and the
  opcode dispatch disappears entirely;
* registers touched by a region are loaded into locals once at entry
  and spilled back once per exit;
* statically-determined event counts (execution counts, intra-region
  load-use hazards) are not counted at run time at all: the region bumps
  one entry counter, misspeculation exits bump one site counter, and the
  per-pc execution/hazard arrays are reconstructed after the run as
  ``entries − Σ earlier-exit counts`` per offset;
* instruction fetches are elided for same-cache-line successors: the
  :class:`repro.arch.cache.Cache` last-line fast path makes such
  lookups observably inert (no LRU movement, no L2 traffic), so only
  line-transition pcs issue real ``fetch()`` calls;
* genuinely dynamic events (cache miss levels, taken conditional
  branches, committed ``movcond``, misspeculations, cross-region
  load-use hazards) are recorded in the same nine per-pc arrays the
  fast path keeps, so the final aggregation is literally the shared
  :func:`repro.arch.predecode.fold_result` — the two engines cannot
  drift in how they fold events into a :class:`SimResult`.

Control transfers (branches, calls, returns, misspeculation redirects
into the Δ-skeleton) leave the region and go through a small dispatch
loop indexed by pc.  A transfer to a pc that is not a region entry
(e.g. an indirect jump through a corrupted return address) *deoptimizes*:
the whole run is replayed on the per-step engine, which is bit-identical,
so correctness never depends on the compiled cover being complete.

Hook degradation (the four-engine contract, see docs/engines.md):

* ``faults`` — a :class:`repro.faults.session.FaultSession` must observe
  every architectural step, so a compiled run with a live fault session
  degrades to :func:`repro.arch.predecode.run_fast` for the entire run
  (same counters, same classifications — only slower);
* ``obs`` — survives compilation natively: the per-pc arrays *are* the
  sample, so ``obs=True`` costs the compiled engine nothing;
* ``trace_hook`` — rejected, exactly as on the fast path: per-step
  tracing is the legacy interpreter's job.

Hot self-loop regions (a block whose conditional latch targets its own
entry) are emitted in a *loop mode*: a ``while True`` body with eager
prologue loads, flag spills at back edges, and a step-budget check per
pass.  Each loop region additionally gets a *steady-state twin* — a
second body with the inline icache probes compiled out.  After one
priming pass every line the loop fetches is L1-resident, so the probes
are unobservable L1 hits whose only effect is MRU reordering; the twin
replays the compressed recency permutation once per pass boundary
instead.  A runtime associativity guard (``INW >= distinct lines``)
selects the twin only when residency actually holds, and twins whose
emission diverges from the priming body (sites, pcs) are discarded —
bit-identity is never assumed, always re-verified differentially.

The generated source is cached on the :class:`LinkedProgram` instance
(keyed by register-file narrowing and slice width), so repeated runs of
one binary recompile nothing.  Each image also keeps a pool of reusable
:class:`_Runtime` instances keyed by (step limit, cache geometry):
registers, the 4 MB flat memory, cache way lists and all per-pc counter
arrays are reset in place between runs, and results are copied out so a
cached runtime never aliases a returned :class:`SimResult`.
"""

from __future__ import annotations

from struct import Struct

from repro.arch.cache import L1_LINE_SHIFT, CacheGeometry, MemoryHierarchy
from repro.arch.predecode import (
    OP_ADC,
    OP_ADDS,
    OP_ADDSL,
    OP_ADDSPI,
    OP_ALU,
    OP_B,
    OP_BCOND,
    OP_BL,
    OP_BS_BIN,
    OP_BS_CMP,
    OP_BS_LDR,
    OP_BS_TRUNC,
    OP_BS_TRUNC_HI,
    OP_BX,
    OP_CMP,
    OP_CMP64HI,
    OP_CMP64LO,
    OP_DIV,
    OP_ERROR,
    OP_EXT,
    OP_LOAD,
    OP_MOV,
    OP_MOVCOND,
    OP_MUL,
    OP_NOP,
    OP_ORRSL,
    OP_OUT,
    OP_SBC,
    OP_STORE,
    OP_SUBS,
    OP_SUBSPI,
    OP_UMULL,
    fold_result,
    predecode,
    run_fast,
)
from repro.arch.widths import BYTE_MASKS as _MASKS, slice_mask
from repro.interp.interpreter import evaluate_icmp
from repro.interp.memory import MEMORY_SIZE, STACK_TOP, FlatMemory, initialize_globals
from repro.ir.types import int_type

HALT = 0xFFFFFFFF

#: a region stops extending past this many instructions (codegen bound;
#: the fallthrough pc becomes a region entry of its own)
MAX_REGION = 256

#: backward branches spanning at most this many instructions keep tracing
#: (loop unrolling up to MAX_REGION); larger loop bodies already amortize
#: their entry cost, so they end the region instead
UNROLL_SPAN = 64

#: in loop mode (a region whose trace returns to its own leader), keep
#: unrolling copies of the loop body until this many instructions before
#: closing the ``while True`` back edge, amortizing the per-iteration
#: bookkeeping (entry counter, hazard check, flag spills) over the copies
LOOP_UNROLL = 192

_SPEC_OPS = (OP_BS_BIN, OP_BS_TRUNC, OP_BS_TRUNC_HI, OP_BS_LDR)

_U16 = Struct("<H").unpack_from
_U32 = Struct("<I").unpack_from
_P16 = Struct("<H").pack_into
_P32 = Struct("<I").pack_into

_UNSIGNED = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
             "ugt": ">", "uge": ">="}
_SIGNED = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}

#: names the generated factory binds from its argument dict
_BIND_NAMES = (
    "regs", "S", "data", "out_append",
    "IC2", "ICM", "DC2", "DCM", "HZ", "MS", "TK", "MC", "BE", "BX",
    "ICD", "MERR", "U16", "U32", "P16", "P32",
    "IW", "DW", "LW", "ISM", "LSM", "INW", "LNW", "LIM",
)


def _icmp_dyn(cond, a, b, width):
    """Dynamic-width comparison helper for entry-inherited cmp state."""
    return evaluate_icmp(cond, a, b, int_type(64 if width == 8 else width * 8))


class CompiledImage:
    """One translated program: a code object plus fold metadata."""

    __slots__ = ("codeobj", "source", "leaders", "fold_regions",
                 "n_insts", "n_regions", "n_sites", "runtimes")

    def __init__(self, codeobj, source, leaders, fold_regions,
                 n_insts, n_regions, n_sites):
        self.codeobj = codeobj
        self.source = source
        self.leaders = leaders
        self.fold_regions = fold_regions
        self.n_insts = n_insts
        self.n_regions = n_regions
        self.n_sites = n_sites
        #: reusable :class:`_Runtime` instances keyed by (step limit,
        #: cache geometry) — see run_compiled
        self.runtimes = {}


class _RegionEmitter:
    """Generates the specialized function for one region.

    A region is a superblock: it starts at a region entry (*leader*) and
    runs straight-line through subsequent leaders until a control-flow
    terminator (``b``/``bcond``/``bl``/``bx``/undecodable) or the
    :data:`MAX_REGION` cap.  Regions may therefore overlap; the fold
    adds each region's contribution to the shared per-pc arrays.
    """

    def __init__(self, code, start, n, inst_bytes, delta, spec_mask,
                 region_idx, site_base, leaders, stop_set=frozenset(),
                 loop_mode=False, spill=None, steady=False,
                 entry_probe=True, site_map=None):
        self.code = code
        self.start = start
        self.n = n
        self.inst_bytes = inst_bytes
        self.delta = delta
        self.spec_mask = spec_mask
        self.region_idx = region_idx
        self.site_base = site_base
        self.leaders = leaders
        self.stop_set = stop_set
        # loop mode: the region's trace returns to its own leader, so the
        # body is wrapped in ``while True`` and back edges ``continue``
        # instead of returning — register locals stay live across
        # iterations.  ``spill`` is the full write set discovered by the
        # straight-line first pass: any exit may run after a back edge,
        # so every exit conservatively spills all of it (a spill of an
        # unwritten local just rewrites the value the prologue loaded).
        self.loop_mode = loop_mode
        self.spill = spill if spill is not None else []
        self.wants_loop = False
        # steady mode re-emits a loop body with the icache model compiled
        # out: once a full pass has run (all fetched lines resident, L1
        # always hits — unobservable), each probe is a pure MRU reorder
        # of resident lines, so the body records probes instead of
        # emitting them and every pass boundary (side exit, back edge)
        # applies the prefix's compressed remove/append permutation —
        # bit-identical ways-list state at a fraction of the work.
        # ``entry_probe`` says whether the pass-top line check would fire
        # (static: uniform over all back-edge lines, else ineligible);
        # ``site_map`` reuses the priming body's fold-site ids in walk
        # order, keeping one set of counters for both bodies.
        self.steady = steady
        self.entry_probe = entry_probe
        self.site_map = site_map
        self._site_i = 0
        self.probe_seq: list = []     # icache lines probed, in walk order
        self.backedge_lines: list = []  # line of each back edge's inst
        self.boundary_done = False    # steady walk passed the first back edge
        self.first_backedge_end = None  # body index just past that edge
        self.cycle_len = None         # offset of the first return to start
        self.body: list = []          # (indent, text)
        self.pending_loads: list = []  # regs first read by the current inst
        self.bound: set = set()       # regs bound as locals
        self.dirty: list = []         # regs written (spill order)
        self.dirty_set: set = set()
        self.pcs: list = []           # covered pcs, in offset order
        self.hz_offsets: list = []    # offsets with a static load-use hazard
        self.sites: list = []         # (absolute site index, offset)
        self.cmp = ("inherit",)       # | ("loaded",) | ("set", cw, amax, bmax)
        self.carry = "inherit"        # | "loaded" | "set"
        self.llr = None               # dest reg of an immediately-preceding load
        self.r14_const = None         # r14's value when statically known
        self.fallthrough_target = None

    # -- low-level helpers ----------------------------------------------

    def line(self, indent, text):
        self.body.append((indent, text))

    def reg(self, r, read=True):
        if r not in self.bound:
            self.bound.add(r)
            if read and not self.loop_mode:
                # lazily loaded just before the instruction that first
                # reads it, so a path that exits the region early never
                # pays for registers only later instructions touch.
                # (Loop mode hoists every load into the prologue instead:
                # a back edge must find all locals initialized.)
                self.pending_loads.append(r)
        return f"r{r}"

    def wrote(self, r):
        if r == 14:
            self.r14_const = None
        if r not in self.dirty_set:
            self.dirty_set.add(r)
            self.dirty.append(r)

    def rd(self, d):
        """Read descriptor -> (expression, max possible value)."""
        k = d[0]
        if k == 0:
            return repr(d[1]), d[1]
        if k == 2:
            return self.reg(13), 0xFFFFFFFF
        name = self.reg(d[1])
        shift, mask = d[2], d[3]
        if mask == 0xFFFFFFFF and shift == 0:
            return name, 0xFFFFFFFF
        if shift:
            return f"(({name} >> {shift}) & {mask:#x})", mask
        return f"({name} & {mask:#x})", mask

    def wr(self, indent, w, expr, vmax, force_load=False):
        """Emit a register write for descriptor ``w`` from ``expr``.

        ``vmax`` is a proven upper bound on the expression's value, used
        to drop redundant masking.  ``force_load`` binds the old value
        even for full-width writes (needed when the write is emitted
        under a condition, so exits can spill an initialized local).
        """
        r, shift, vmask, keep = w
        full = vmask == 0xFFFFFFFF and shift == 0
        name = self.reg(r, read=(force_load or not full))
        self.wrote(r)
        if full:
            if vmax <= vmask:
                self.line(indent, f"{name} = {expr}")
            else:
                self.line(indent, f"{name} = ({expr}) & 0xFFFFFFFF")
            return
        sub = expr if vmax <= vmask else f"({expr}) & {vmask:#x}"
        if shift:
            self.line(indent,
                      f"{name} = ({name} & {keep:#x}) | (({sub}) << {shift})")
        else:
            self.line(indent, f"{name} = ({name} & {keep:#x}) | ({sub})")

    # -- cmp / carry lazy state -----------------------------------------

    def ensure_cmp(self, indent):
        if self.cmp[0] == "inherit":
            self.line(indent, "ca, cb, cw = S[0]")
            self.cmp = ("loaded",)

    def set_cmp(self, indent, a_expr, b_expr, cw, amax, bmax):
        self.line(indent, f"ca = {a_expr}")
        self.line(indent, f"cb = {b_expr}")
        self.cmp = ("set", cw, amax, bmax)

    def cond_expr(self, indent, cond):
        """Emit prep lines for comparison ``cond``; return a bool expr."""
        if self.cmp[0] == "inherit":
            self.ensure_cmp(indent)
        if self.cmp[0] == "loaded":
            return f"ICD({cond!r}, ca, cb, cw)"
        cw, amax, bmax = self.cmp[1], self.cmp[2], self.cmp[3]
        if cw == "hi":
            # a dangling cmp64hi read: evaluate_icmp would be handed the
            # "hi" tag as a width — reproduce the fast path's behavior
            return f"ICD({cond!r}, ca, cb, 'hi')"
        op = _UNSIGNED.get(cond)
        if op is not None:
            return f"ca {op} cb"
        op = _SIGNED.get(cond)
        if op is None:
            return f"ICD({cond!r}, ca, cb, {cw!r})"
        bits = 64 if cw == 8 else cw * 8
        mask = (1 << bits) - 1
        sb = 1 << (bits - 1)
        m = 1 << bits
        ae = "ca" if (amax is not None and amax <= mask) else f"(ca & {mask:#x})"
        be = "cb" if (bmax is not None and bmax <= mask) else f"(cb & {mask:#x})"
        self.line(indent, f"sa_ = {ae}")
        self.line(indent, f"sa_ = sa_ - {m} if sa_ >= {sb} else sa_")
        self.line(indent, f"sb_ = {be}")
        self.line(indent, f"sb_ = sb_ - {m} if sb_ >= {sb} else sb_")
        return f"sa_ {op} sb_"

    def ensure_carry(self, indent):
        if self.carry == "inherit":
            self.line(indent, "cy = S[1]")
            self.carry = "loaded"

    # -- exits -----------------------------------------------------------

    def ret_target(self, pc_target):
        """Exit-value expression for a static transfer to ``pc_target``.

        Region entries return the *next region function* directly, so the
        dispatch loop never touches the pc-indexed table for statically
        known control transfers; anything else returns the integer pc
        (which the dispatcher bounds-checks, or recognizes as HALT).
        """
        if pc_target in self.leaders:
            return f"_b{pc_target}"
        return repr(pc_target)

    def new_site(self, off):
        """Allocate (or, in steady mode, reuse the twin's) fold site."""
        if self.site_map is not None:
            site = self.site_map[self._site_i]
            self._site_i += 1
        else:
            site = self.site_base + len(self.sites)
        self.sites.append((site, off))
        return site

    def emit_replay(self, indent):
        """Steady mode: materialize the recorded probe prefix.

        Applying each line's MRU move in dedup-keep-last order yields the
        exact ways-list state the skipped probes would have left (probed
        lines move to the back in last-touch order; unprobed lines keep
        their relative order), and the shadow takes the last probed line.
        """
        seq = self.probe_seq
        if not seq:
            return
        seen = set()
        last = []
        for ln in reversed(seq):
            if ln not in seen:
                seen.add(ln)
                last.append(ln)
        last.reverse()
        for ln in last:
            self.line(indent, f"iw_ = IW[{ln} & ISM]")
            self.line(indent, f"iw_.remove({ln})")
            self.line(indent, f"iw_.append({ln})")
        self.line(indent, f"S[4] = {seq[-1]}")

    def emit_exit(self, indent, steps, ret, llr_store=None):
        if self.steady and not self.boundary_done:
            self.emit_replay(indent)
        if self.cmp[0] == "set":
            self.line(indent, f"S[0] = (ca, cb, {self.cmp[1]!r})")
        if self.carry == "set":
            self.line(indent, "S[1] = cy")
        for r in (self.spill if self.loop_mode else self.dirty):
            self.line(indent, f"regs[{r}] = r{r}")
        if llr_store is not None:
            self.line(indent, f"S[2] = {llr_store}")
        self.line(indent, f"S[3] += {steps}")
        self.line(indent, f"return {ret}")

    def emit_loopback(self, indent, steps, site_off=None):
        """Back edge to the region's own leader (loop mode only).

        Emits a ``continue`` to the top of the ``while True`` body:
        register locals stay live, so only the lazily-shared flag state
        (cmp tuple, carry, pending load reg) is written back to ``S``
        for the next iteration's on-demand reads.  ``site_off`` marks a
        *conditional* back edge as a fold site (later offsets in the
        body stop executing once it is taken); the terminal back edge at
        the end of the body needs none.  The step-limit check mirrors
        the dispatch loop's: returning the region's own function hands
        an over-limit run back to the dispatcher, which raises.
        """
        if self.steady and not self.boundary_done:
            self.emit_replay(indent)
        if self.cmp[0] == "set":
            self.line(indent, f"S[0] = (ca, cb, {self.cmp[1]!r})")
        if self.carry == "set":
            self.line(indent, "S[1] = cy")
        if site_off is not None:
            site = self.new_site(site_off)
            self.line(indent, f"BX[{site}] += 1")
        if self.llr is not None:
            self.line(indent, f"S[2] = {self.llr}")
        self.line(indent, f"S[3] += {steps}")
        self.line(indent, "if S[3] > LIM:")
        self.line(indent + 1, f"return _b{self.start}")
        self.line(indent, "continue")
        if self.first_backedge_end is None:
            # the first back edge is the steady boundary: when a steady
            # twin is attached, the priming body hands off to it here
            self.first_backedge_end = len(self.body)

    def misspec_exit(self, pc, off):
        site = self.new_site(off)
        self.line(1, f"MS[{pc}] += 1")
        self.line(1, f"BX[{site}] += 1")
        self.emit_exit(1, off + 1, self.ret_target(pc + self.delta))

    # -- main loop --------------------------------------------------------

    def emit(self):
        code = self.code
        pc = self.start
        off = 0
        prev_line_no = None
        while True:
            if off >= MAX_REGION or not 0 <= pc < self.n:
                if 0 <= pc < self.n:
                    # the cap created a new region entry; register it as a
                    # leader *now* so the exit can return its function
                    self.leaders.add(pc)
                    self.fallthrough_target = pc
                else:
                    self.fallthrough_target = None
                self.emit_exit(0, off, self.ret_target(pc),
                               llr_store=self.llr)
                return
            t = code[pc]
            self.pcs.append(pc)
            if off and self.llr is not None:
                # intra-region load-use hazard: fully static
                if self.llr in t[1]:
                    self.hz_offsets.append(off)
                self.llr = None
            line_no = (pc * self.inst_bytes) >> L1_LINE_SHIFT
            if line_no != prev_line_no:
                if self.steady and not self.boundary_done:
                    # steady prefix: record for the boundary replay; the
                    # entry check's outcome is static — see _build_image
                    if prev_line_no is not None or self.entry_probe:
                        self.probe_seq.append(line_no)
                elif prev_line_no is None:
                    # region entry: the line may equal the icache's current
                    # last line (S[4] shadows Cache._last_line exactly: the
                    # skipped probe would have been the observably-inert
                    # same-line fast path)
                    self.line(0, f"if S[4] != {line_no}:")
                    self.line(1, f"S[4] = {line_no}")
                    self._icache_probe(1, line_no, pc)
                else:
                    # intra-region transition: execution follows emission
                    # order exactly, so at run time the shadow always holds
                    # the previous instruction's line — a differing static
                    # line therefore never matches it: probe unconditionally
                    # (a matching one needs no probe at all: the skipped
                    # lookup is the observably-inert same-line fast path)
                    self.line(0, f"S[4] = {line_no}")
                    self._icache_probe(0, line_no, pc)
            prev_line_no = line_no
            mark = len(self.body)
            nxt = self.emit_inst(pc, off, t)
            for i, r in enumerate(self.pending_loads):
                self.body.insert(mark + i, (0, f"r{r} = regs[{r}]"))
            self.pending_loads = []
            if nxt == "end":
                return
            nxt_pc = nxt[1] if nxt is not None else pc + 1
            off += 1
            if nxt_pc == self.start:
                # the trace arrived back at this region's own leader
                if not self.loop_mode:
                    # first pass: stop here and ask _build_image to
                    # re-emit the region in loop mode (the exit below is
                    # only reached if the rebuild is skipped — it never
                    # is — but keeps the pass-one body well-formed)
                    self.wants_loop = True
                    self.emit_exit(0, off, self.ret_target(self.start),
                                   llr_store=self.llr)
                    return
                if self.cycle_len is None:
                    self.cycle_len = off
                if off >= LOOP_UNROLL or off + self.cycle_len > MAX_REGION:
                    # enough copies — or another full copy would trip the
                    # MAX_REGION cap mid-body and lose the terminal back
                    # edge: close the loop here
                    if self.steady and self.boundary_done:
                        # same residency argument as the conditional
                        # back edge: go through the dispatcher
                        self.emit_exit(0, off, self.ret_target(self.start),
                                       llr_store=self.llr)
                        return
                    self.backedge_lines.append(
                        (pc * self.inst_bytes) >> L1_LINE_SHIFT)
                    self.emit_loopback(0, off)
                    if self.steady:
                        self.boundary_done = True
                    return
                # otherwise keep unrolling copies of the loop body
            elif nxt_pc in self.stop_set:
                # transfer into a known self-loop's entry: dispatch to
                # its loop-mode region rather than unrolling a second
                # copy of the loop here
                self.emit_exit(0, off, self.ret_target(nxt_pc),
                               llr_store=self.llr)
                return
            pc = nxt_pc

    def _icache_probe(self, indent, line_no, pc):
        """Inline set-associative LRU probe of the icache at a static line.

        Replicates exactly the observable parts of ``Cache.lookup`` +
        ``MemoryHierarchy.fetch`` (ways-list mutations and the served
        level); the skipped parts — CacheStats, ``dram_accesses``, the
        L2 ``_last_line`` (reset before every L2 lookup, so its fast path
        never fires) — never escape ``run_compiled``.
        """
        L = line_no
        self.line(indent, f"iw_ = IW[{L} & ISM]")
        self.line(indent, f"if {L} in iw_:")
        self.line(indent + 1, f"if iw_[-1] != {L}:")
        self.line(indent + 2, f"iw_.remove({L})")
        self.line(indent + 2, f"iw_.append({L})")
        self.line(indent, "else:")
        self.line(indent + 1, f"iw_.append({L})")
        self.line(indent + 1, "if len(iw_) > INW:")
        self.line(indent + 2, "iw_.pop(0)")
        self.line(indent + 1, f"lw_ = LW[{L} & LSM]")
        self.line(indent + 1, f"if {L} in lw_:")
        self.line(indent + 2, f"if lw_[-1] != {L}:")
        self.line(indent + 3, f"lw_.remove({L})")
        self.line(indent + 3, f"lw_.append({L})")
        self.line(indent + 2, f"IC2[{pc}] += 1")
        self.line(indent + 1, "else:")
        self.line(indent + 2, f"lw_.append({L})")
        self.line(indent + 2, "if len(lw_) > LNW:")
        self.line(indent + 3, "lw_.pop(0)")
        self.line(indent + 2, f"ICM[{pc}] += 1")

    def _dcache_bump(self, pc):
        # S[5] shadows the dcache's last line: a same-line access is the
        # observably-inert fast path in Cache.lookup, so skip the probe
        # entirely; otherwise probe the inlined dcache/L2 model (same
        # equivalence argument as _icache_probe, dynamic line)
        self.line(0, f"dl_ = a_ >> {L1_LINE_SHIFT}")
        self.line(0, "if dl_ != S[5]:")
        self.line(1, "S[5] = dl_")
        self.line(1, "dw_ = DW[dl_ & ISM]")
        self.line(1, "if dl_ in dw_:")
        self.line(2, "if dw_[-1] != dl_:")
        self.line(3, "dw_.remove(dl_)")
        self.line(3, "dw_.append(dl_)")
        self.line(1, "else:")
        self.line(2, "dw_.append(dl_)")
        self.line(2, "if len(dw_) > INW:")
        self.line(3, "dw_.pop(0)")
        self.line(2, "lw_ = LW[dl_ & LSM]")
        self.line(2, "if dl_ in lw_:")
        self.line(3, "if lw_[-1] != dl_:")
        self.line(4, "lw_.remove(dl_)")
        self.line(4, "lw_.append(dl_)")
        self.line(3, f"DC2[{pc}] += 1")
        self.line(2, "else:")
        self.line(3, "lw_.append(dl_)")
        self.line(3, "if len(lw_) > LNW:")
        self.line(4, "lw_.pop(0)")
        self.line(3, f"DCM[{pc}] += 1")

    def _addr(self, base_expr, disp):
        if disp:
            self.line(0, f"a_ = ({base_expr} + {disp}) & 0xFFFFFFFF")
        else:
            self.line(0, f"a_ = {base_expr}")

    def emit_inst(self, pc, off, t):
        """Emit one instruction's body; True if it terminates the region."""
        op = t[0]
        spec = self.spec_mask

        if op == OP_ALU:
            sub = t[2]
            a, amax = self.rd(t[3])
            b, bmax = self.rd(t[4])
            mask = t[6]
            if sub == 0:
                self.wr(0, t[5], f"({a} + {b}) & {mask:#x}", mask)
            elif sub == 1:
                self.wr(0, t[5], f"({a} - {b}) & {mask:#x}", mask)
            elif sub == 2:
                self.wr(0, t[5], f"{a} & {b}", min(amax, bmax))
            elif sub == 3:
                self.wr(0, t[5], f"{a} | {b}", amax | bmax)
            elif sub == 4:
                self.wr(0, t[5], f"{a} ^ {b}", amax | bmax)
            elif sub == 5:
                if t[4][0] == 0:
                    c = t[4][1]
                    if c < 32:
                        self.wr(0, t[5], f"({a} << {c}) & {mask:#x}", mask)
                    else:
                        self.wr(0, t[5], "0", 0)
                else:
                    self.line(0, f"b_ = {b}")
                    self.wr(0, t[5],
                            f"(({a} << b_) & {mask:#x}) if b_ < 32 else 0",
                            mask)
            elif sub == 6:
                if t[4][0] == 0:
                    c = t[4][1]
                    if c < 32:
                        self.wr(0, t[5], f"{a} >> {c}", amax >> c)
                    else:
                        self.wr(0, t[5], "0", 0)
                else:
                    self.line(0, f"b_ = {b}")
                    self.wr(0, t[5], f"({a} >> b_) if b_ < 32 else 0", amax)
            else:  # asr: arithmetic shift at the operation's signed width
                ty = t[7]
                bits = ty.bits
                tmask = ty.mask
                sb = 1 << (bits - 1)
                m = 1 << bits
                ae = a if amax <= tmask else f"({a} & {tmask:#x})"
                self.line(0, f"a_ = {ae}")
                self.line(0, f"a_ = a_ - {m} if a_ >= {sb} else a_")
                if t[4][0] == 0:
                    sh = min(t[4][1], bits - 1)
                    self.wr(0, t[5], f"(a_ >> {sh}) & {tmask:#x}", tmask)
                else:
                    self.line(0, f"b_ = {b}")
                    self.line(0, f"s_ = b_ if b_ < {bits - 1} else {bits - 1}")
                    self.wr(0, t[5], f"(a_ >> s_) & {tmask:#x}", tmask)
            return None

        if op == OP_MOV:
            e, vmax = self.rd(t[2])
            self.wr(0, t[3], e, vmax)
            return None

        if op == OP_LOAD:
            base, _ = self.rd(t[2])
            size = t[4]
            self._addr(base, t[3])
            self.line(0, f"if a_ > {MEMORY_SIZE - size}:")
            self.line(1, "raise MemoryError("
                         f"\"load out of bounds: 0x%x+{size}\" % a_)")
            if size == 1:
                self.line(0, "v_ = data[a_]")
            elif size == 2:
                self.line(0, "v_ = U16(data, a_)[0]")
            else:
                self.line(0, "v_ = U32(data, a_)[0]")
            self.wr(0, t[5], "v_", _MASKS[size])
            self._dcache_bump(pc)
            self.llr = t[6]
            return None

        if op == OP_STORE:
            v, vmax = self.rd(t[2])
            base, _ = self.rd(t[3])
            size = t[5]
            self._addr(base, t[4])
            self.line(0, f"if a_ > {MEMORY_SIZE - size}:")
            self.line(1, "raise MemoryError("
                         f"\"store out of bounds: 0x%x+{size}\" % a_)")
            if size == 1:
                sv = v if vmax <= 0xFF else f"{v} & 0xFF"
                self.line(0, f"data[a_] = {sv}")
            elif size == 2:
                sv = v if vmax <= 0xFFFF else f"{v} & 0xFFFF"
                self.line(0, f"P16(data, a_, {sv})")
            else:
                self.line(0, f"P32(data, a_, {v})")
            self._dcache_bump(pc)
            return None

        if op == OP_BCOND:
            target = t[3]
            if target == self.start:
                if self.loop_mode:
                    # conditional back edge to the loop header: continue
                    # to the top of the while body, fall through otherwise
                    cond = self.cond_expr(0, t[2])
                    self.line(0, f"if {cond}:")
                    self.line(1, f"TK[{pc}] += 1")
                    if self.steady and self.boundary_done:
                        # past the boundary the tail's live probes may
                        # have evicted prefix lines: re-enter through the
                        # dispatcher so a priming pass re-establishes
                        # residency (bit-identical to `continue` — the
                        # spilled locals reload and BE bumps on entry)
                        site = self.new_site(off)
                        self.line(1, f"BX[{site}] += 1")
                        self.emit_exit(1, off + 1,
                                       self.ret_target(self.start),
                                       llr_store=self.llr)
                        return None
                    self.backedge_lines.append(
                        (pc * self.inst_bytes) >> L1_LINE_SHIFT)
                    self.emit_loopback(1, off + 1, site_off=off)
                    if self.steady and not self.boundary_done:
                        # not-taken path crosses the boundary too:
                        # materialize the skipped prefix, then emit the
                        # tail with the live icache model
                        self.emit_replay(0)
                        self.boundary_done = True
                    return None
                self.wants_loop = True
            if target > pc:
                # forward conditional (if/else): superblock-continue on the
                # fallthrough path — the taken path is an early exit with
                # its own fold site so later offsets lose its entries
                cond = self.cond_expr(0, t[2])
                self.line(0, f"if {cond}:")
                self.line(1, f"TK[{pc}] += 1")
                site = self.new_site(off)
                self.line(1, f"BX[{site}] += 1")
                self.emit_exit(1, off + 1, self.ret_target(target))
                return None
            if 0 <= target and pc - target <= UNROLL_SPAN:
                # small backward conditional (tight-loop latch, usually
                # taken): invert it — the not-taken side becomes the early
                # exit and tracing continues at the loop header, unrolling
                # the loop until MAX_REGION
                cond = self.cond_expr(0, t[2])
                site = self.new_site(off)
                self.line(0, f"if not ({cond}):")
                self.line(1, f"BX[{site}] += 1")
                self.emit_exit(1, off + 1, self.ret_target(pc + 1))
                self.line(0, f"TK[{pc}] += 1")
                return ("jump", target)
            # far backward conditional: end the region
            cond = self.cond_expr(0, t[2])
            self.line(0, f"if {cond}:")
            self.line(1, f"TK[{pc}] += 1")
            self.emit_exit(1, off + 1, self.ret_target(target))
            self.emit_exit(0, off + 1, self.ret_target(pc + 1))
            return "end"

        if op == OP_B:
            if 0 <= t[2] < self.n and (t[2] > pc or pc - t[2] <= UNROLL_SPAN):
                # unconditional jump with a nearby target: keep tracing
                # (forward = block merge, backward = while-loop unroll)
                return ("jump", t[2])
            self.emit_exit(0, off + 1, self.ret_target(t[2]))
            return "end"

        if op == OP_CMP or op == OP_BS_CMP:
            a, amax = self.rd(t[2])
            b, bmax = self.rd(t[3])
            self.set_cmp(0, a, b, t[4], amax, bmax)
            return None

        if op == OP_BS_BIN:
            sub = t[2]
            a, amax = self.rd(t[3])
            b, bmax = self.rd(t[4])
            neg = False
            wmax = None
            if sub == 0:
                self.line(0, f"w_ = {a} + {b}")
                wmax = amax + bmax
            elif sub == 1:
                self.line(0, f"w_ = {a} - {b}")
                neg = True
            elif sub == 2:
                self.line(0, f"w_ = {a} & {b}")
                wmax = min(amax, bmax)
            elif sub == 3:
                self.line(0, f"w_ = {a} | {b}")
                wmax = amax | bmax
            elif sub == 4:
                self.line(0, f"w_ = {a} ^ {b}")
                wmax = amax | bmax
            elif sub == 5:
                if t[4][0] == 0:
                    c = t[4][1]
                    if c < 32:
                        self.line(0, f"w_ = {a} << {c}")
                        wmax = amax << c
                    else:
                        self.line(0, "w_ = 0")
                        wmax = 0
                else:
                    self.line(0, f"b_ = {b}")
                    self.line(0, f"w_ = ({a} << b_) if b_ < 32 else 0")
            else:
                if t[4][0] == 0:
                    c = t[4][1]
                    if c < 32:
                        self.line(0, f"w_ = {a} >> {c}")
                        wmax = amax >> c
                    else:
                        self.line(0, "w_ = 0")
                        wmax = 0
                else:
                    self.line(0, f"b_ = {b}")
                    self.line(0, f"w_ = ({a} >> b_) if b_ < 32 else 0")
                    wmax = amax
            if wmax is not None and not neg and wmax <= spec:
                # statically proven in-slice: can never misspeculate
                self.wr(0, t[5], "w_", wmax)
            else:
                cond = (f"w_ < 0 or w_ > {spec}" if neg else f"w_ > {spec}")
                self.line(0, f"if {cond}:")
                self.misspec_exit(pc, off)
                self.wr(0, t[5], "w_", spec)
            return None

        if op == OP_BS_TRUNC:
            a, amax = self.rd(t[2])
            if amax <= spec:
                self.wr(0, t[3], a, amax)
            else:
                self.line(0, f"v_ = {a}")
                self.line(0, f"if v_ > {spec}:")
                self.misspec_exit(pc, off)
                self.wr(0, t[3], "v_", spec)
            return None

        if op == OP_BS_TRUNC_HI:
            a, amax = self.rd(t[2])
            if amax:
                self.line(0, f"if {a} != 0:")
                self.misspec_exit(pc, off)
            return None

        if op == OP_BS_LDR:
            addr, _ = self.rd(t[2])
            size = t[3]
            self.line(0, f"a_ = {addr}")
            self.line(0, f"if a_ > {MEMORY_SIZE - size}:")
            self.line(1, "raise MemoryError("
                         f"\"load out of bounds: 0x%x+{size}\" % a_)")
            if size == 1:
                self.line(0, "v_ = data[a_]")
            elif size == 2:
                self.line(0, "v_ = U16(data, a_)[0]")
            else:
                self.line(0, "v_ = U32(data, a_)[0]")
            self._dcache_bump(pc)
            if _MASKS[size] > spec:
                self.line(0, f"if v_ > {spec}:")
                self.misspec_exit(pc, off)
            self.wr(0, t[4], "v_", min(_MASKS[size], spec))
            self.llr = t[6]
            return None

        if op == OP_EXT:
            e, vmax = self.rd(t[2])
            ty = t[3]
            if ty is None:
                self.wr(0, t[4], e, vmax)
            else:  # sxt
                bits = ty.bits
                sb = 1 << (bits - 1)
                m = 1 << bits
                if vmax < sb:
                    self.wr(0, t[4], e, vmax)
                else:
                    self.line(0, f"v_ = {e}")
                    self.line(0,
                              f"v_ = (v_ - {m}) & 0xFFFFFFFF "
                              f"if v_ >= {sb} else v_")
                    self.wr(0, t[4], "v_", 0xFFFFFFFF)
            return None

        if op == OP_MOVCOND:
            cond = self.cond_expr(0, t[2])
            self.line(0, f"if {cond}:")
            self.line(1, f"MC[{pc}] += 1")
            e, vmax = self.rd(t[3])
            self.wr(1, t[5], e, vmax, force_load=True)
            return None

        if op == OP_MUL:
            a, _ = self.rd(t[2])
            b, _ = self.rd(t[3])
            self.wr(0, t[4], f"({a} * {b}) & {t[5]:#x}", t[5])
            return None

        if op == OP_UMULL:
            a, _ = self.rd(t[2])
            b, _ = self.rd(t[3])
            self.line(0, f"p_ = {a} * {b}")
            self.wr(0, t[4], "p_ & 0xFFFFFFFF", 0xFFFFFFFF)
            self.wr(0, t[5], "(p_ >> 32) & 0xFFFFFFFF", 0xFFFFFFFF)
            return None

        if op == OP_DIV:
            sub = t[2]
            ty = t[6]
            tmask = ty.mask
            a, amax = self.rd(t[3])
            b, bmax = self.rd(t[4])
            self.line(0, f"b_ = {b}")
            self.line(0, "if b_ == 0:")
            self.line(1, 'raise MERR("division by zero")')
            if sub == 0:
                e = f"{a} // b_"
                self.line(0, f"v_ = ({e}) & {tmask:#x}" if amax > tmask
                          else f"v_ = {e}")
            elif sub == 2:
                e = f"{a} % b_"
                self.line(0, f"v_ = ({e}) & {tmask:#x}" if amax > tmask
                          else f"v_ = {e}")
            else:
                bits = ty.bits
                sbit = 1 << (bits - 1)
                m = 1 << bits
                ae = a if amax <= tmask else f"({a} & {tmask:#x})"
                be = "b_" if bmax <= tmask else f"(b_ & {tmask:#x})"
                self.line(0, f"sa_ = {ae}")
                self.line(0, f"sa_ = sa_ - {m} if sa_ >= {sbit} else sa_")
                self.line(0, f"sb_ = {be}")
                self.line(0, f"sb_ = sb_ - {m} if sb_ >= {sbit} else sb_")
                if sub == 1:  # sdiv
                    self.line(0, "q_ = abs(sa_) // abs(sb_)")
                    self.line(0, "v_ = (-q_ if (sa_ < 0) != (sb_ < 0) "
                                 f"else q_) & {tmask:#x}")
                else:  # srem
                    self.line(0, "q_ = abs(sa_) % abs(sb_)")
                    self.line(0, f"v_ = (-q_ if sa_ < 0 else q_) & {tmask:#x}")
            self.wr(0, t[5], "v_", tmask)
            return None

        if op == OP_ADDS or op == OP_ADC:
            a, _ = self.rd(t[2])
            b, _ = self.rd(t[3])
            if op == OP_ADC:
                self.ensure_carry(0)
                self.line(0, f"f_ = {a} + {b} + cy")
            else:
                self.line(0, f"f_ = {a} + {b}")
            self.line(0, "cy = f_ >> 32")
            self.carry = "set"
            self.wr(0, t[4], "f_ & 0xFFFFFFFF", 0xFFFFFFFF)
            return None

        if op == OP_SUBS:
            a, _ = self.rd(t[2])
            b, _ = self.rd(t[3])
            self.line(0, f"a_ = {a}")
            self.line(0, f"b_ = {b}")
            self.line(0, "cy = 1 if a_ >= b_ else 0")
            self.carry = "set"
            self.wr(0, t[4], "(a_ - b_) & 0xFFFFFFFF", 0xFFFFFFFF)
            return None

        if op == OP_SBC:
            a, _ = self.rd(t[2])
            b, _ = self.rd(t[3])
            self.ensure_carry(0)
            self.line(0, f"f_ = {a} - {b} - 1 + cy")
            self.line(0, "cy = 1 if f_ >= 0 else 0")
            self.carry = "set"
            self.wr(0, t[4], "f_ & 0xFFFFFFFF", 0xFFFFFFFF)
            return None

        if op == OP_ADDSL:
            a, _ = self.rd(t[2])
            b, _ = self.rd(t[3])
            self.wr(0, t[5], f"({a} + ({b} << {t[4]})) & 0xFFFFFFFF",
                    0xFFFFFFFF)
            return None

        if op == OP_ORRSL:
            a, _ = self.rd(t[2])
            b, _ = self.rd(t[3])
            sh = t[4]
            if sh >= 0:
                self.wr(0, t[5], f"{a} | (({b} << {sh}) & 0xFFFFFFFF)",
                        0xFFFFFFFF)
            else:
                self.wr(0, t[5], f"{a} | ({b} >> {-sh})", 0xFFFFFFFF)
            return None

        if op == OP_BL:
            name = self.reg(14, read=False)
            self.line(0, f"{name} = {pc + 1}")
            self.wrote(14)
            if 0 <= t[2] < self.n:
                # inline the call: keep tracing into the callee, and note
                # that r14 now provably holds pc+1 (wrote() clears the
                # note on any later r14 write, e.g. a restore-from-stack)
                self.r14_const = pc + 1
                return ("jump", t[2])
            self.emit_exit(0, off + 1, self.ret_target(t[2]))
            return "end"

        if op == OP_BX:
            if self.r14_const is not None and 0 <= self.r14_const < self.n:
                # return to a statically known address (the inlined call's
                # continuation): keep tracing there — no dispatch at all
                return ("jump", self.r14_const)
            self.emit_exit(0, off + 1, self.reg(14))
            return "end"

        if op == OP_SUBSPI or op == OP_ADDSPI:
            name = self.reg(13)
            self.wrote(13)
            sign = "-" if op == OP_SUBSPI else "+"
            self.line(0, f"{name} = ({name} {sign} {t[2]}) & 0xFFFFFFFF")
            return None

        if op == OP_CMP64HI:
            a, amax = self.rd(t[2])
            b, bmax = self.rd(t[3])
            self.set_cmp(0, a, b, "hi", amax, bmax)
            return None

        if op == OP_CMP64LO:
            self.ensure_cmp(0)
            a, _ = self.rd(t[2])
            b, _ = self.rd(t[3])
            self.line(0, f"ca = (ca << 32) | {a}")
            self.line(0, f"cb = (cb << 32) | {b}")
            self.cmp = ("set", 8, None, None)
            return None

        if op == OP_OUT:
            e, _ = self.rd(t[2])
            self.line(0, f"out_append({e})")
            return None

        if op == OP_NOP:
            return None

        # OP_ERROR: undecodable instruction — raises when (and only when)
        # it actually executes, exactly like both steppers
        self.line(0, f"raise MERR({(t[2] + ' at ' + str(pc))!r})")
        return "end"

    # -- assembly ---------------------------------------------------------

    def _render_body(self, out, base, body):
        out.append(base + f"BE[{self.region_idx}] += 1")
        hz = self.code[self.start][1] if self.start < self.n else ()
        # dynamic load-use hazard carried in from the previous region
        # (or, in loop mode, from the previous iteration's back edge)
        if hz:
            out.append(base + "llr_ = S[2]")
            out.append(base + "if llr_ != -1:")
            out.append(base + "    S[2] = -1")
            cond = " or ".join(f"llr_ == {r}" for r in hz)
            out.append(base + f"    if {cond}:")
            out.append(base + f"        HZ[{self.start}] += 1")
        else:
            out.append(base + "if S[2] != -1:")
            out.append(base + "    S[2] = -1")
        for indent, text in body:
            out.append(base + "    " * indent + text)

    def render(self, fname, steady_em=None, steady_guard=0):
        out = [f"    def {fname}():"]
        if self.loop_mode:
            # eager prologue: every register the body references (or any
            # exit spills) becomes a local before the loop, so back edges
            # carry values in locals without touching ``regs``
            for r in sorted(self.bound | set(self.spill)):
                out.append(f"        r{r} = regs[{r}]")
            if steady_em is not None:
                # one full priming pass makes every fetched line resident
                # (runtime-guarded: the steady body's replay needs them
                # all to fit in one L1 set's ways in the worst case),
                # then the terminal back edge breaks into the steady loop
                out.append(f"        _p = 1 if INW >= {steady_guard}"
                           " else -1")
            out.append("        while True:")
            base = "            "
        else:
            base = "        "
        self._render_body(out, base, self.body)
        if steady_em is not None:
            out.append("        while True:")
            self._render_body(out, base, steady_em.body)
        return out


def _build_image(linked, narrow_rf, spec_mask):
    code, effects = predecode(linked, narrow_rf)
    n = len(code)
    delta = linked.delta
    inst_bytes = linked.inst_bytes
    entry = linked.entry_index

    leaders = set()
    if 0 <= entry < n:
        leaders.add(entry)
    for pc, t in enumerate(code):
        op = t[0]
        if op == OP_B or op == OP_BL:
            if 0 <= t[2] < n:
                leaders.add(t[2])
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif op == OP_BCOND:
            if 0 <= t[3] < n:
                leaders.add(t[3])
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif op == OP_BX:
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif delta and op in _SPEC_OPS:
            if pc + delta < n:
                leaders.add(pc + delta)

    # Phase A — analysis: trace every leader straight-line (no stop set)
    # to discover which regions return to their own start.  Those become
    # loop-mode regions; ``wants[leader]`` holds the trace's write set
    # (the loop pass spills it at every exit) or None for straight code.
    wants = {}
    scheduled = set(leaders)
    pending = sorted(leaders)
    while pending:
        discovered = []
        for leader in pending:
            em = _RegionEmitter(code, leader, n, inst_bytes, delta, spec_mask,
                                region_idx=0, site_base=0, leaders=leaders)
            em.emit()
            wants[leader] = em.dirty if em.wants_loop else None
            ft = em.fallthrough_target
            if ft is not None and ft not in scheduled:
                # a MAX_REGION cap created a new region entry
                scheduled.add(ft)
                discovered.append(ft)
        pending = sorted(discovered)

    # Phase B — emission.  Loop regions trace freely back to their own
    # start; straight regions stop when they reach a known self-loop's
    # entry and dispatch to its loop-mode function instead of unrolling
    # a throwaway copy of the loop in place.
    stop_set = frozenset(L for L, spill in wants.items() if spill is not None)
    order = []
    chunks = []
    fold_regions = []
    n_sites = 0
    pending = sorted(wants)
    while pending:
        discovered = []
        for leader in pending:
            spill = wants[leader]
            sem = None
            guard = 0
            if spill is not None:
                em = _RegionEmitter(code, leader, n, inst_bytes, delta,
                                    spec_mask, region_idx=len(order),
                                    site_base=n_sites, leaders=leaders,
                                    loop_mode=True, spill=spill)
                em.emit()
                # steady twin: eligible when the body has a back edge —
                # the first one is the steady boundary, and the pass-top
                # line check's outcome is static (the boundary edge's
                # line either is or isn't the leader's line)
                if em.first_backedge_end is not None:
                    first_line = (leader * inst_bytes) >> L1_LINE_SHIFT
                    sem = _RegionEmitter(
                        code, leader, n, inst_bytes, delta, spec_mask,
                        region_idx=em.region_idx, site_base=n_sites,
                        leaders=leaders, loop_mode=True, spill=spill,
                        steady=True,
                        entry_probe=em.backedge_lines[0] != first_line,
                        site_map=[s for s, _ in em.sites])
                    try:
                        sem.emit()
                    except IndexError:  # twin walk diverged (site map)
                        sem = None
                    if sem is not None and (sem.pcs != em.pcs
                                            or sem.sites != em.sites):
                        sem = None
                if sem is not None:
                    guard = len(set(sem.probe_seq))
                    # hand the priming loop off to the steady one at its
                    # boundary back edge (one full prefix execution has
                    # made every skipped line resident by then)
                    k = em.first_backedge_end
                    ind = em.body[k - 1][0]
                    assert em.body[k - 1] == (ind, "continue")
                    em.body[k - 1:k] = [(ind, "_p -= 1"), (ind, "if _p:"),
                                        (ind + 1, "continue"),
                                        (ind, "break")]
            else:
                em = _RegionEmitter(code, leader, n, inst_bytes, delta,
                                    spec_mask, region_idx=len(order),
                                    site_base=n_sites, leaders=leaders,
                                    stop_set=stop_set)
                em.emit()
            order.append(leader)
            chunks.append(em.render(f"_b{leader}", steady_em=sem,
                                    steady_guard=guard))
            fold_regions.append((em.region_idx, tuple(em.pcs),
                                 tuple(em.hz_offsets), tuple(em.sites)))
            n_sites += len(em.sites)
            ft = em.fallthrough_target
            if ft is not None and ft not in wants:
                # phase B regions are prefixes of their phase A traces,
                # so a new cap target here is unreachable in practice —
                # but cover it to keep every _b reference defined
                wants[ft] = None
                discovered.append(ft)
        pending = sorted(discovered)

    src = ["def _factory(B):"]
    for name in _BIND_NAMES:
        src.append(f"    {name} = B['{name}']")
    for chunk in chunks:
        src.extend(chunk)
    src.append("    return [" + ", ".join(f"_b{L}" for L in order) + "]")
    source = "\n".join(src) + "\n"
    codeobj = compile(source, "<repro.arch.compiled>", "exec")
    return CompiledImage(codeobj, source, tuple(order), tuple(fold_regions),
                         n, len(order), n_sites)


#: shared all-zero page for resetting a runtime's flat memory in place
_ZERO_MEM = bytes(MEMORY_SIZE)


class _Runtime:
    """Reusable execution state for one :class:`CompiledImage`.

    Building a run's machinery — the ``exec`` of the code object, one
    closure per region, the cache-way lists, a dozen counter arrays and
    a fresh flat memory — costs on the order of a millisecond, which
    rivals the execute phase of short workloads.  One instance per
    (step limit, cache geometry) is cached on the image and reset in
    place between runs; :func:`run_compiled` copies everything that
    outlives the call (memory image, output, obs arrays) out of this
    shared state before returning.
    """

    __slots__ = ("memory", "regs", "S", "output", "entries", "exits",
                 "ic2", "icm", "dc2", "dcm", "hz", "ms", "tk", "mc",
                 "ways", "table", "_zeros", "_zentries", "_zexits")

    def __init__(self, image, step_limit, geometry):
        from repro.arch.machine import MachineError

        n = image.n_insts
        hierarchy = MemoryHierarchy(geometry)
        icache, dcache, l2 = hierarchy.icache, hierarchy.dcache, hierarchy.l2
        self.memory = FlatMemory()
        self.regs = [0] * 16
        self.S = [(0, 0, 4), 0, -1, 0, -1, -1]
        self.output = []
        (self.ic2, self.icm, self.dc2, self.dcm, self.hz, self.ms,
         self.tk, self.mc) = ([0] * n for _ in range(8))
        self.entries = [0] * image.n_regions
        self.exits = [0] * image.n_sites
        # every cache set's ways list, for in-place clearing on reset —
        # the generated code probes these lists directly, so no other
        # hierarchy state is live
        self.ways = (*icache._lines, *dcache._lines, *l2._lines)
        ns: dict = {}
        exec(image.codeobj, ns)
        funcs = ns["_factory"]({
            "regs": self.regs, "S": self.S, "data": self.memory.data,
            "out_append": self.output.append,
            "IC2": self.ic2, "ICM": self.icm,
            "DC2": self.dc2, "DCM": self.dcm,
            "HZ": self.hz, "MS": self.ms, "TK": self.tk, "MC": self.mc,
            "BE": self.entries, "BX": self.exits,
            "ICD": _icmp_dyn, "MERR": MachineError,
            "U16": _U16, "U32": _U32, "P16": _P16, "P32": _P32,
            "IW": icache._lines, "DW": dcache._lines, "LW": l2._lines,
            "ISM": icache._set_mask, "LSM": l2._set_mask,
            "INW": icache.ways, "LNW": l2.ways,
            "LIM": step_limit,
        })
        self.table = [None] * n
        for leader, fn in zip(image.leaders, funcs):
            self.table[leader] = fn
        self._zeros = [0] * n
        self._zentries = [0] * image.n_regions
        self._zexits = [0] * image.n_sites

    def reset(self):
        """Restore pristine architectural and counter state in place."""
        self.regs[:] = (0,) * 16
        self.regs[13] = STACK_TOP
        self.regs[14] = HALT
        self.S[:] = ((0, 0, 4), 0, -1, 0, -1, -1)
        del self.output[:]
        z = self._zeros
        for arr in (self.ic2, self.icm, self.dc2, self.dcm,
                    self.hz, self.ms, self.tk, self.mc):
            arr[:] = z
        self.entries[:] = self._zentries
        self.exits[:] = self._zexits
        for w in self.ways:
            if w:
                del w[:]
        self.memory.data[:] = _ZERO_MEM


def get_image(linked, narrow_rf, spec_mask) -> CompiledImage:
    """Translate (or fetch the cached translation of) a linked program."""
    cache = getattr(linked, "_compiled_cache", None)
    if cache is None:
        cache = {}
        linked._compiled_cache = cache
    key = (narrow_rf, spec_mask)
    image = cache.get(key)
    if image is None:
        image = _build_image(linked, narrow_rf, spec_mask)
        cache[key] = image
    return image


def run_compiled(machine):
    """Execute a linked program on the compiled engine.

    Produces a :class:`repro.arch.machine.SimResult` bit-identical to
    both :meth:`Machine._run_legacy` and
    :func:`repro.arch.predecode.run_fast` —
    ``tests/test_engine_equivalence.py`` asserts this differentially.
    """
    from repro.arch.machine import MachineError

    if machine.trace_hook is not None:
        raise ValueError("trace_hook requires the legacy path")
    if machine.faults is not None:
        # a live FaultSession must observe every architectural step:
        # degrade the whole run to the per-step engine (bit-identical)
        return run_fast(machine)

    linked = machine.linked
    narrow_rf = machine.narrow_rf
    spec_mask = slice_mask(machine.slice_width)
    code, effects = predecode(linked, narrow_rf)
    image = get_image(linked, narrow_rf, spec_mask)
    n = image.n_insts

    # Reuse (or build) the cached runtime for this step limit and cache
    # geometry: the exec'd closures permanently bind its arrays, so the
    # same instance serves every run after an in-place reset.
    g = machine.geometry or CacheGeometry()
    key = (machine.step_limit, g.l1_kb, g.l1_ways, g.l2_kb, g.l2_ways)
    rt = image.runtimes.get(key)
    if rt is None:
        image.runtimes[key] = rt = _Runtime(image, machine.step_limit,
                                            machine.geometry)
    rt.reset()
    memory = rt.memory
    initialize_globals(memory, machine.module, linked.global_addresses)
    regs = rt.regs
    # shared mutable slots: cmp state, carry, pending load-use reg, steps,
    # icache shadow last-line, dcache shadow last-line
    S = rt.S
    table = rt.table

    # Each region returns either the *next region's function* (statically
    # known transfers — branches, calls, misspec redirects, fallthroughs)
    # or an integer pc (indirect jumps via bx, out-of-range targets, HALT).
    # Only the integer case touches the dispatch table.
    pc = linked.entry_index
    limit = machine.step_limit
    if not 0 <= pc < n:
        raise MachineError(f"pc out of range: {pc}")
    fn = table[pc]
    while True:
        if fn is None:
            # control reached the middle of every covering region (e.g.
            # an indirect jump through a corrupted return address):
            # deoptimize — replay the whole run on the per-step engine
            return run_fast(machine)
        nxt = fn()
        if S[3] > limit:
            raise MachineError("machine step limit exceeded")
        # spin on direct function references (statically known transfers)
        # without touching the table; integers are the rare case — bx
        # through a dynamic r14, out-of-range targets, or HALT
        while nxt.__class__ is not int:
            nxt = nxt()
            if S[3] > limit:
                raise MachineError("machine step limit exceeded")
        if nxt == HALT:
            break
        if not 0 <= nxt < n:
            raise MachineError(f"pc out of range: {nxt}")
        fn = table[nxt]

    # With obs on, the per-pc event arrays outlive this call inside the
    # returned PcSample — snapshot them so the next run's reset can't
    # mutate a caller-held result.  Without obs they are only read below,
    # so the runtime's arrays are used directly.
    entries, exits = rt.entries, rt.exits
    if machine.obs:
        ic_l2_pc, ic_mem_pc = list(rt.ic2), list(rt.icm)
        d_l2_pc, d_mem_pc = list(rt.dc2), list(rt.dcm)
        hazard_pc, misspec_pc = list(rt.hz), list(rt.ms)
        taken_pc, movcond_pc = list(rt.tk), list(rt.mc)
    else:
        ic_l2_pc, ic_mem_pc = rt.ic2, rt.icm
        d_l2_pc, d_mem_pc = rt.dc2, rt.dcm
        hazard_pc, misspec_pc = rt.hz, rt.ms
        taken_pc, movcond_pc = rt.tk, rt.mc
    exec_counts = [0] * n

    # reconstruct per-pc execution counts and static hazards from the
    # per-region entry/exit counters: an instruction at offset ``off``
    # executed once per region entry minus once per earlier-offset exit.
    # Exit sites with a zero count don't split segments, so the common
    # case is one bulk `+= running` sweep over the region's pcs.
    for _ridx, pcs, hz_offsets, sites in image.fold_regions:
        running = entries[_ridx]
        if not running:
            continue
        start = 0
        for site, soff in sites:
            x = exits[site]
            if not x:
                continue
            end = soff + 1
            for p in pcs[start:end]:
                exec_counts[p] += running
            running -= x
            start = end
            if running <= 0:
                break
        if running > 0:
            for p in pcs[start:]:
                exec_counts[p] += running
        for hoff in hz_offsets:
            # count at offset hoff = entries − Σ exits at earlier offsets
            r = entries[_ridx]
            for site, soff in sites:
                if soff >= hoff:
                    break
                r -= exits[site]
            if r > 0:
                hazard_pc[pcs[hoff]] += r

    # the result's memory image and output list must not alias runtime
    # state — both are caller-visible and the runtime is reset in place
    result_memory = FlatMemory.__new__(FlatMemory)
    result_memory.size = memory.size
    result_memory.data = bytearray(memory.data)
    return fold_result(
        machine, narrow_rf, code, effects, exec_counts,
        ic_l2_pc, ic_mem_pc, d_l2_pc, d_mem_pc,
        hazard_pc, misspec_pc, taken_pc, movcond_pc,
        list(rt.output), result_memory, regs, None,
    )
