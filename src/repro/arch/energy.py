"""Event-based energy model, standing in for the paper's gate-level power
analysis (45 nm @ 1.2 V — see DESIGN.md for the substitution argument).

Energy = Σ events × per-event cost.  Per-event constants are
45 nm-class values; the *relative* costs carry the results:

* an 8-bit register-slice access costs 1/4 of a 32-bit access (§RQ1 —
  reported directly from the paper's gate-level model);
* the segmented ALU's 8-bit slice op is ~1/4 of a full 32-bit op
  (shorter carry chain + idle upper slices);
* cache/DRAM events dominate when spilling forces memory traffic.

The ``pipeline`` component charges a per-cycle cost covering clocking,
decode and control — stall cycles therefore surface as pipeline energy,
matching Fig. 9's attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: per-event energies in pJ
COSTS = {
    # instruction supply
    "icache_access": 11.0,
    "l2_access": 85.0,
    "dram_access": 1800.0,
    # data supply
    "dcache_access": 14.0,
    # register file (32-bit baseline access; narrower scales by width/4)
    "rf_read": 1.6,
    "rf_write": 2.0,
    # execution
    "alu32": 4.4,
    "alu8": 1.2,
    "mul": 13.0,
    "div": 36.0,
    "move": 1.8,
    # control overhead, charged per cycle (stalls included)
    "pipeline_cycle": 5.0,
    # out-of-order structures (repro.arch.ooo): rename-map ports, ROB
    # entries, issue-queue CAM and wakeup broadcast, rename checkpoints.
    # Folded into the ``pipeline`` component (they are control overhead,
    # not datapath); zero-count on the in-order engines, so every
    # legacy/fast/compiled number is unchanged.
    "rename_read": 0.4,
    "rename_write": 0.6,
    "rob_write": 1.3,
    "rob_read": 1.0,
    "iq_write": 1.1,
    "iq_wakeup": 0.9,
    "ckpt_op": 2.2,
}

#: component attribution for Fig 9
COMPONENTS = ("alu", "regfile", "dcache", "icache", "pipeline")


@dataclass
class EnergyCounters:
    """Raw event counts accumulated by the machine simulator."""

    icache_l1: int = 0
    icache_l2: int = 0
    icache_mem: int = 0
    dcache_l1: int = 0
    dcache_l2: int = 0
    dcache_mem: int = 0
    rf_reads_by_width: dict = field(default_factory=lambda: {1: 0, 2: 0, 4: 0})
    rf_writes_by_width: dict = field(default_factory=lambda: {1: 0, 2: 0, 4: 0})
    alu32_ops: int = 0
    alu8_ops: int = 0
    mul_ops: int = 0
    div_ops: int = 0
    move_ops: int = 0
    cycles: int = 0
    # out-of-order structure events (repro.arch.ooo); zero on the
    # in-order engines
    rename_reads: int = 0
    rename_writes: int = 0
    rob_writes: int = 0
    rob_reads: int = 0
    iq_writes: int = 0
    iq_wakeups: int = 0
    ckpt_ops: int = 0

    def merge(self, other: "EnergyCounters") -> None:
        self.icache_l1 += other.icache_l1
        self.icache_l2 += other.icache_l2
        self.icache_mem += other.icache_mem
        self.dcache_l1 += other.dcache_l1
        self.dcache_l2 += other.dcache_l2
        self.dcache_mem += other.dcache_mem
        for width in (1, 2, 4):
            self.rf_reads_by_width[width] += other.rf_reads_by_width[width]
            self.rf_writes_by_width[width] += other.rf_writes_by_width[width]
        self.alu32_ops += other.alu32_ops
        self.alu8_ops += other.alu8_ops
        self.mul_ops += other.mul_ops
        self.div_ops += other.div_ops
        self.move_ops += other.move_ops
        self.cycles += other.cycles
        self.rename_reads += other.rename_reads
        self.rename_writes += other.rename_writes
        self.rob_writes += other.rob_writes
        self.rob_reads += other.rob_reads
        self.iq_writes += other.iq_writes
        self.iq_wakeups += other.iq_wakeups
        self.ckpt_ops += other.ckpt_ops


@dataclass
class EnergyBreakdown:
    """Per-component energies (pJ) — the Fig 9 view."""

    alu: float = 0.0
    regfile: float = 0.0
    dcache: float = 0.0
    icache: float = 0.0
    pipeline: float = 0.0

    @property
    def total(self) -> float:
        return self.alu + self.regfile + self.dcache + self.icache + self.pipeline

    def as_dict(self) -> dict:
        return {
            "alu": self.alu,
            "regfile": self.regfile,
            "dcache": self.dcache,
            "icache": self.icache,
            "pipeline": self.pipeline,
        }


def compute_energy(
    counters: EnergyCounters, *, scale: dict = None, slice_bits: int = 8
) -> EnergyBreakdown:
    """Convert event counts to a component energy breakdown.

    ``scale`` optionally multiplies each component's energy — the DTS model
    (RQ8) passes per-component voltage-scaling factors through here.

    ``slice_bits`` is the speculative slice width the binary was compiled
    for: the segmented ALU's slice-op cost scales linearly with the active
    carry-chain length, so a 16-bit slice op costs twice the calibrated
    8-bit cost and a 4-bit op half of it.  At the default (8) the numbers
    are bit-identical to the original model.  This is an approximation for
    the few native i8 ops that share the ``alu8`` counter under a non-8-bit
    configuration; see docs/dse.md.
    """
    out = EnergyBreakdown()
    c = COSTS
    out.icache = (
        counters.icache_l1 * c["icache_access"]
        + counters.icache_l2 * (c["icache_access"] + c["l2_access"])
        + counters.icache_mem
        * (c["icache_access"] + c["l2_access"] + c["dram_access"])
    )
    out.dcache = (
        counters.dcache_l1 * c["dcache_access"]
        + counters.dcache_l2 * (c["dcache_access"] + c["l2_access"])
        + counters.dcache_mem
        * (c["dcache_access"] + c["l2_access"] + c["dram_access"])
    )
    for width, count in counters.rf_reads_by_width.items():
        out.regfile += count * c["rf_read"] * (width / 4.0)
    for width, count in counters.rf_writes_by_width.items():
        out.regfile += count * c["rf_write"] * (width / 4.0)
    out.alu = (
        counters.alu32_ops * c["alu32"]
        + counters.alu8_ops * c["alu8"] * (slice_bits / 8.0)
        + counters.mul_ops * c["mul"]
        + counters.div_ops * c["div"]
        + counters.move_ops * c["move"]
    )
    out.pipeline = (
        counters.cycles * c["pipeline_cycle"]
        + counters.rename_reads * c["rename_read"]
        + counters.rename_writes * c["rename_write"]
        + counters.rob_writes * c["rob_write"]
        + counters.rob_reads * c["rob_read"]
        + counters.iq_writes * c["iq_write"]
        + counters.iq_wakeups * c["iq_wakeup"]
        + counters.ckpt_ops * c["ckpt_op"]
    )
    if scale:
        for component, factor in scale.items():
            setattr(out, component, getattr(out, component) * factor)
    return out
