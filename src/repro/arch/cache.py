"""Cache hierarchy model: split 8 KiB 4-way L1 I/D caches over a shared
256 KiB 8-way L2, backed by a fixed-latency DRAM (the DRAMSim substitution —
see DESIGN.md).  LRU replacement, 32-byte lines.

``access`` returns the level that served the request ("l1" / "l2" / "mem"),
which the machine model converts into stall cycles and energy events.  A
last-line fast path keeps the common sequential-fetch case cheap in the
pure-Python simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

LINE_BYTES = 32
L1_LINE_SHIFT = 5


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative LRU cache over 32-byte lines."""

    def __init__(self, size_bytes: int, ways: int, name: str = "cache") -> None:
        if size_bytes % (ways * LINE_BYTES):
            raise ValueError("cache size must divide into ways * line size")
        self.name = name
        self.ways = ways
        self.sets = size_bytes // (ways * LINE_BYTES)
        if self.sets & (self.sets - 1):
            raise ValueError("set count must be a power of two")
        self._set_mask = self.sets - 1
        #: per set: list of tags, most recently used last
        self._lines: list[list[int]] = [[] for _ in range(self.sets)]
        self.stats = CacheStats()
        self._last_line = -1

    def lookup(self, addr: int) -> bool:
        """Access ``addr``; returns True on hit.  Fills on miss."""
        line = addr >> L1_LINE_SHIFT
        if line == self._last_line:
            self.stats.accesses += 1
            return True
        self._last_line = line
        self.stats.accesses += 1
        index = line & self._set_mask
        tag = line >> 0
        ways = self._lines[index]
        if tag in ways:
            if ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.ways:
            ways.pop(0)
        return False

    def reset_fastpath(self) -> None:
        self._last_line = -1


@dataclass(frozen=True)
class CacheGeometry:
    """Sweepable cache configuration (sizes in KiB; defaults match §4.1)."""

    l1_kb: int = 8
    l1_ways: int = 4
    l2_kb: int = 256
    l2_ways: int = 8

    def validate(self) -> "CacheGeometry":
        # Construct both levels once so bad geometry fails loudly at
        # configuration time, not mid-simulation.
        Cache(self.l1_kb * 1024, self.l1_ways, "probe-l1")
        Cache(self.l2_kb * 1024, self.l2_ways, "probe-l2")
        return self


class MemoryHierarchy:
    """I$/D$ + shared L2 + DRAM; returns the serving level per access."""

    def __init__(self, geometry: CacheGeometry = None) -> None:
        g = geometry or CacheGeometry()
        self.geometry = g
        self.icache = Cache(g.l1_kb * 1024, g.l1_ways, "icache")
        self.dcache = Cache(g.l1_kb * 1024, g.l1_ways, "dcache")
        self.l2 = Cache(g.l2_kb * 1024, g.l2_ways, "l2")
        self.dram_accesses = 0

    def fetch(self, addr: int) -> str:
        if self.icache.lookup(addr):
            return "l1"
        self.l2.reset_fastpath()
        if self.l2.lookup(addr):
            return "l2"
        self.dram_accesses += 1
        return "mem"

    def data_access(self, addr: int) -> str:
        if self.dcache.lookup(addr):
            return "l1"
        self.l2.reset_fastpath()
        if self.l2.lookup(addr):
            return "l2"
        self.dram_accesses += 1
        return "mem"
