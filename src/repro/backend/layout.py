"""Code layout and linking (§3.3.4).

Linearizes machine functions into one flat instruction array and realizes
the paper's Δ-based misspeculation redirection: after the code image, a
*skeleton area* is laid out such that for every speculative instruction at
index ``i``, index ``i + Δ`` holds an unconditional branch to that
instruction's region handler.  The hardware's misspeculation action is then
simply ``PC += Δ`` (a single special register), with the compiler-chosen
layout guaranteeing control enters the correct handler.

Also hosts the Thumb-like compact-ISA expansion (RQ9): three-address ALU
ops become move + two-address op when the destination differs from the
first source, and shifted-operand forms split into shift + op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.backend.mir import (
    Imm,
    MachineBlock,
    MachineFunction,
    MachineInst,
    MachineProgram,
    SCRATCH0,
    SCRATCH1,
    Slice,
)

_COMMUTATIVE = frozenset({"add", "and", "orr", "eor", "mul", "adds", "adc"})
_THREE_ADDR = frozenset(
    {"add", "sub", "and", "orr", "eor", "lsl", "lsr", "asr", "mul",
     "adds", "adc", "subs", "sbc", "udiv", "sdiv", "urem", "srem"}
)


@dataclass
class DebugInfo:
    """Per-pc compiler provenance, emitted at link time for :mod:`repro.obs`.

    Parallel arrays over the final instruction image (including the Δ
    skeleton area), plus the handler map that lets attribution charge
    misspeculation recovery to the region that caused it:

    * ``var[pc]`` — name of the IR value the instruction defines (the
      vreg hint captured by the register allocator), or ``""``;
    * ``block[pc]`` — machine-block label the instruction came from;
    * ``world[pc]`` — ``"spec"`` / ``"orig"`` / ``"handler"`` /
      ``"skeleton"`` / ``""`` (non-speculative code);
    * ``region[pc]`` — speculative-region id or ``None``;
    * ``handler_of`` — pc of a speculative instruction → entry pc of its
      misspeculation handler (what ``pc + Δ``'s skeleton branch targets).

    Function-granular metadata (consumed by :mod:`repro.verify` to delimit
    per-function entry/exit state):

    * ``func_signature[name]`` — ``{"params": ((pname, bits, is_pointer),
      ...), "return_bits": int | None}``, captured from the IR signature at
      instruction selection;
    * ``func_range[name]`` — half-open ``(start_pc, end_pc)`` span of the
      function's instructions in the linked image (excluding the skeleton).
    """

    var: list = field(default_factory=list)
    block: list = field(default_factory=list)
    world: list = field(default_factory=list)
    region: list = field(default_factory=list)
    handler_of: dict = field(default_factory=dict)
    func_signature: dict = field(default_factory=dict)
    func_range: dict = field(default_factory=dict)


@dataclass
class LinkedProgram:
    """A fully linked executable image for the machine simulator."""

    isa: str
    insts: list = field(default_factory=list)
    delta: int = 0
    entry_index: int = 0
    function_entries: dict = field(default_factory=dict)
    global_addresses: dict = field(default_factory=dict)
    #: bytes per instruction (Thumb: 2, ARM: 4) for I$ addressing
    inst_bytes: int = 4
    #: speculative slice width (bits) the image was compiled for; drives
    #: the machine's misspeculation mask
    slice_width: int = 8
    #: index -> function name (for attribution in diagnostics)
    owner: list = field(default_factory=list)
    code_size: int = 0
    #: per-pc provenance for the observability layer
    debug: DebugInfo = field(default_factory=DebugInfo)
    #: functions compiled with BASELINE codegen after a middle-end failure
    #: (graceful degradation); the machine engines access their registers
    #: at full width even when ``isa == "ARM_BS"``
    fallback_functions: frozenset = frozenset()

    def dump(self, start: int = 0, count: int = 80) -> str:
        lines = []
        for i in range(start, min(start + count, len(self.insts))):
            lines.append(f"{i:5d}: {self.insts[i]!r}")
        return "\n".join(lines)


def _expand_thumb(func: MachineFunction) -> None:
    """Convert to two-address form, splitting shifted-operand instructions."""
    for block in func.blocks:
        out: list[MachineInst] = []
        for inst in block.insts:
            if inst.opcode in ("addsl", "orrsl"):
                base, index, shift = inst.uses
                # SCRATCH1: a spilled base reloads into SCRATCH0 (first use)
                # and must survive; a spilled index reloads into SCRATCH1,
                # which the shift may then read-and-overwrite safely.
                scratch = Slice(SCRATCH1, 0, 4)
                if inst.opcode == "addsl":
                    out.append(MachineInst("lsl", [scratch], [index, shift], width=4))
                else:
                    amount = shift.value
                    op = "lsl" if amount >= 0 else "lsr"
                    out.append(
                        MachineInst(op, [scratch], [index, Imm(abs(amount))], width=4)
                    )
                inst = MachineInst(
                    inst.opcode[:3], inst.defs, [base, scratch], width=inst.width
                )
            if (
                inst.opcode in _THREE_ADDR
                and inst.defs
                and inst.uses
                and isinstance(inst.defs[0], Slice)
                and inst.defs[0] != inst.uses[0]
            ):
                if (
                    inst.opcode in _COMMUTATIVE
                    and len(inst.uses) > 1
                    and inst.defs[0] == inst.uses[1]
                ):
                    inst.uses = [inst.uses[1], inst.uses[0]]
                else:
                    if (
                        len(inst.uses) > 1
                        and isinstance(inst.uses[1], Slice)
                        and isinstance(inst.defs[0], Slice)
                        and inst.uses[1].reg == inst.defs[0].reg
                    ):
                        # rd aliases the second source: stage it in scratch
                        # before the destination move clobbers it.  SCRATCH1
                        # is free here: defs never allocate it, and a staged
                        # second source was reloaded into SCRATCH0 at most.
                        scratch2 = Slice(SCRATCH1, 0, 4)
                        out.append(
                            MachineInst(
                                "mov", [scratch2], [inst.uses[1]], width=4,
                                kind="copy",
                            )
                        )
                        inst.uses = [inst.uses[0], scratch2] + inst.uses[2:]
                    out.append(
                        MachineInst(
                            "mov", [inst.defs[0]], [inst.uses[0]], width=4, kind="copy"
                        )
                    )
                    inst.uses = [inst.defs[0]] + inst.uses[1:]
            out.append(inst)
        block.insts = out


def _order_blocks(func: MachineFunction) -> list[MachineBlock]:
    """Lay spec-world code first, then CFG_orig, then handlers.

    This keeps the hot speculative path dense in the instruction cache; the
    cold recovery code (CFG_orig + handlers) sits behind it.
    """
    spec = [b for b in func.blocks if not b.is_handler and b.world != "orig"]
    orig = [b for b in func.blocks if not b.is_handler and b.world == "orig"]
    handlers = [b for b in func.blocks if b.is_handler]
    return spec + orig + handlers


def link_program(
    program: MachineProgram, *, slice_width: int = 8
) -> LinkedProgram:
    """Linearize, resolve branches, and append the Δ skeleton area."""
    linked = LinkedProgram(isa=program.isa, slice_width=slice_width)
    linked.global_addresses = dict(program.global_addresses)
    if program.isa == "THUMB":
        linked.inst_bytes = 2
        for func in program.functions.values():
            _expand_thumb(func)

    # First pass: assign indices with fallthrough branch elimination.
    block_index: dict[int, int] = {}
    flat: list[MachineInst] = []
    owner: list[str] = []
    ordered_functions = list(program.functions.values())
    ordered_functions.sort(key=lambda f: (f.name != program.entry, f.name))

    # We must know block addresses before eliminating fallthrough branches;
    # do it iteratively: first lay out with all branches, then remove
    # branches to the immediately following block and re-lay.
    debug = DebugInfo()
    for _round in range(2):
        flat = []
        owner = []
        block_index = {}
        debug = DebugInfo()
        for func in ordered_functions:
            blocks = _order_blocks(func)
            func_start = len(flat)
            for b_pos, block in enumerate(blocks):
                block_index[id(block)] = len(flat)
                world = "handler" if block.is_handler else (block.world or "")
                for inst in block.insts:
                    if (
                        _round == 1
                        and inst.opcode == "b"
                        and isinstance(inst.target, MachineBlock)
                        and b_pos + 1 < len(blocks)
                        and inst.target is blocks[b_pos + 1]
                    ):
                        continue  # fallthrough
                    flat.append(inst)
                    owner.append(func.name)
                    debug.var.append(inst.comment)
                    debug.block.append(block.name)
                    debug.world.append(world)
                    debug.region.append(block.region_id)
            linked.function_entries[func.name] = block_index[
                id(blocks[0])
            ]
            debug.func_range[func.name] = (func_start, len(flat))
            signature = getattr(func, "signature", None)
            if signature is not None:
                debug.func_signature[func.name] = signature
        if _round == 0:
            # mark fallthrough candidates by checking adjacency in round 1
            pass

    # Resolve branch / call targets to absolute indices and global
    # references to their flat-memory addresses.
    from repro.backend.mir import GlobalRef

    resolved: list[MachineInst] = []
    for inst in flat:
        if isinstance(inst.target, MachineBlock):
            inst = _with_target(inst, block_index[id(inst.target)])
        elif inst.opcode == "bl":
            inst = _with_target(inst, linked.function_entries[inst.target])
        if any(isinstance(u, GlobalRef) for u in inst.uses):
            inst.uses = [
                Imm(program.global_addresses[u.name])
                if isinstance(u, GlobalRef)
                else u
                for u in inst.uses
            ]
        resolved.append(inst)

    code_len = len(resolved)
    linked.code_size = code_len

    # Δ skeleton area: index i + Δ branches to the handler of the
    # speculative instruction at i.  Δ = code image length.
    has_spec = any(i.speculative for i in resolved)
    if has_spec:
        linked.delta = code_len
        skeleton = [MachineInst("nop") for _ in range(code_len)]
        for index, inst in enumerate(resolved):
            if inst.speculative:
                handler_block = inst.handler
                if handler_block is None:
                    raise ValueError(
                        f"speculative instruction without handler at {index}: "
                        f"{inst!r}"
                    )
                skeleton[index] = MachineInst(
                    "b", target=block_index[id(handler_block)]
                )
                debug.handler_of[index] = block_index[id(handler_block)]
        resolved.extend(skeleton)
        owner.extend(["__skeleton__"] * code_len)
        debug.var.extend([""] * code_len)
        debug.block.extend(["__skeleton__"] * code_len)
        debug.world.extend(["skeleton"] * code_len)
        debug.region.extend([None] * code_len)

    linked.insts = resolved
    linked.owner = owner
    linked.debug = debug
    linked.entry_index = linked.function_entries[program.entry]
    return linked


def _with_target(inst: MachineInst, index: int) -> MachineInst:
    inst.target = index
    return inst
