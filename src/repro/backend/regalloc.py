"""Register allocation over SMIR (§3.3.3).

An interval-based allocator that maps virtual registers onto *byte slices*
of the 32-bit register file:

* on the BITSPEC ISA (``ARM_BS``), a 1-byte vreg occupies any free byte cell
  of any allocatable register — up to four packed variables per register;
* on the baseline ARM and Thumb ISAs, every value reserves a whole register
  (the paper's "registers can only be accessed at 32 bits");
* liveness uses the SMIR predecessor rule (Eq. 2): every block of a
  speculative region feeds its handler, so values the handler extends stay
  live (and unclobbered) across the entire region;
* the RQ5 handler-weight heuristic is modeled as allocation priority:
  by default CFG_spec intervals allocate first (handlers presumed cold),
  ``invert_handler_weights=True`` allocates CFG_orig first.

Spilled intervals use spill-everywhere rewriting through two reserved
scratch registers; because speculative-region blocks reload immediately
before each use, the spill-at-top-of-MBB constraint of §3.3.3 holds by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.backend.mir import (
    ALLOCATABLE,
    ARG_REGS,
    CALLEE_SAVED,
    FrameSlot,
    Imm,
    LR,
    MachineBlock,
    MachineFunction,
    MachineInst,
    SCRATCH0,
    SCRATCH1,
    Slice,
    THUMB_ALLOCATABLE,
    VReg,
)


class RegAllocError(Exception):
    """Allocation could not proceed (e.g. too many spilled operands)."""


@dataclass(frozen=True)
class StackArg:
    """Incoming stack argument ``index`` (0-based beyond the 4 register args)."""

    index: int

    def __repr__(self) -> str:
        return f"stackarg{self.index}"


@dataclass
class Interval:
    """A live range as a sorted list of disjoint [start, end] segments.

    Segment precision matters for SMIR: the Eq. 8 merge values (one phi per
    live variable per handled block) are each live only around their own
    block — hull-based ranges would make them all pairwise-conflicting and
    spill CFG_orig wholesale.
    """

    vreg: VReg
    segments: list = field(default_factory=list)
    crosses_call: bool = False
    world: str = "spec"
    location: Optional[object] = None  # Slice or FrameSlot

    @property
    def start(self) -> int:
        return self.segments[0][0] if self.segments else 0

    @property
    def end(self) -> int:
        return self.segments[-1][1] if self.segments else 0

    def add_segment(self, start: int, end: int) -> None:
        """Append/extend; callers add segments in nondecreasing order."""
        if self.segments and start <= self.segments[-1][1] + 1:
            last_start, last_end = self.segments[-1]
            self.segments[-1] = (last_start, max(last_end, end))
        else:
            self.segments.append((start, end))

    def overlaps(self, other: "Interval") -> bool:
        a, b = self.segments, other.segments
        i = j = 0
        while i < len(a) and j < len(b):
            s1, e1 = a[i]
            s2, e2 = b[j]
            if s1 <= e2 and s2 <= e1:
                return True
            if e1 < e2:
                i += 1
            else:
                j += 1
        return False

    def covers(self, position: int) -> bool:
        return any(s <= position <= e for s, e in self.segments)

    @property
    def weight(self) -> int:
        return sum(e - s + 1 for s, e in self.segments)


@dataclass
class AllocationStats:
    """Static allocation outcome (dynamic counts come from simulation)."""

    spilled_vregs: int = 0
    assigned_vregs: int = 0
    spill_stores: int = 0
    spill_loads: int = 0
    copies: int = 0
    frame_bytes: int = 0
    #: "%vN:hint" -> repr of its assigned Slice/FrameSlot (repro.obs)
    assignments: dict = field(default_factory=dict)


def _succs_with_handlers(block: MachineBlock) -> list[MachineBlock]:
    succs = list(block.succs)
    if block.handler is not None:
        succs.append(block.handler)  # Eq. 2
    return succs


def _inst_uses(inst: MachineInst) -> list[VReg]:
    uses = [op for op in inst.uses if isinstance(op, VReg)]
    if inst.opcode == "movcond":
        # Read-modify-write: the previous value survives a false condition.
        uses.extend(op for op in inst.defs if isinstance(op, VReg))
    return uses


def _inst_defs(inst: MachineInst) -> list[VReg]:
    return [op for op in inst.defs if isinstance(op, VReg)]


class RegisterAllocator:
    """Allocates one machine function; see module docstring."""

    def __init__(
        self,
        mfunc: MachineFunction,
        *,
        isa: str = "ARM",
        invert_handler_weights: bool = False,
    ) -> None:
        self.mfunc = mfunc
        self.isa = isa
        self.packing = isa == "ARM_BS"
        self.pool = THUMB_ALLOCATABLE if isa == "THUMB" else ALLOCATABLE
        self.invert = invert_handler_weights
        self.stats = AllocationStats()
        #: per register: list of (start, end, offset, size) assignments
        self._assigned: dict[int, list[tuple[int, int, int, int]]] = {
            r: [] for r in self.pool
        }
        self.location: dict[VReg, object] = {}
        self.used_callee_saved: set[int] = set()
        self._scratch_used = False

    # -- liveness ------------------------------------------------------------

    def _block_liveness(self):
        blocks = self.mfunc.blocks
        gen: dict[MachineBlock, set] = {}
        kill: dict[MachineBlock, set] = {}
        for block in blocks:
            g: set = set()
            k: set = set()
            for inst in block.insts:
                for v in _inst_uses(inst):
                    if v not in k:
                        g.add(v)
                for v in _inst_defs(inst):
                    k.add(v)
            gen[block] = g
            kill[block] = k
        live_in = {b: set() for b in blocks}
        live_out = {b: set() for b in blocks}
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: set = set()
                for succ in _succs_with_handlers(block):
                    out |= live_in[succ]
                new_in = gen[block] | (out - kill[block])
                if out != live_out[block] or new_in != live_in[block]:
                    live_out[block] = out
                    live_in[block] = new_in
                    changed = True
        return live_in, live_out

    def _allocation_order(self) -> list[MachineBlock]:
        """Block order for interval construction.

        Each region's handler is placed immediately after the region's spec
        block: a value the handler needs is live from its spec-world
        definition *to that point only*, instead of stretching across every
        later region.  CFG_orig trails at the end, competing only through
        the values that genuinely flow into it (the Eq. 8 phi merges).
        """
        handler_after: dict[int, MachineBlock] = {}
        for block in self.mfunc.blocks:
            if block.handler is not None:
                handler_after[id(block)] = block.handler
        ordered: list[MachineBlock] = []
        placed: set[int] = set()
        for block in self.mfunc.blocks:
            if block.is_handler or block.world == "orig":
                continue
            ordered.append(block)
            placed.add(id(block))
            handler = handler_after.get(id(block))
            if handler is not None and id(handler) not in placed:
                ordered.append(handler)
                placed.add(id(handler))
        for block in self.mfunc.blocks:
            if block.is_handler and id(block) not in placed:
                ordered.append(block)
                placed.add(id(block))
        for block in self.mfunc.blocks:
            if id(block) not in placed:
                ordered.append(block)
        return ordered

    def _build_intervals(self):
        live_in, live_out = self._block_liveness()
        intervals: dict[VReg, Interval] = {}
        call_positions: list[int] = []
        position = 0

        def interval_of(vreg: VReg) -> Interval:
            interval = intervals.get(vreg)
            if interval is None:
                interval = Interval(vreg)
                intervals[vreg] = interval
            return interval

        for block in self._allocation_order():
            block_start = position
            block_end = block_start + max(len(block.insts), 1)
            # Per-block live segment per vreg: [entry-or-first-touch,
            # exit-or-last-touch].
            seg_start: dict[VReg, int] = {}
            seg_end: dict[VReg, int] = {}
            for v in live_in[block]:
                seg_start[v] = block_start
            pos = block_start
            for inst in block.insts:
                if inst.opcode == "call":
                    call_positions.append(pos)
                for v in _inst_uses(inst):
                    seg_start.setdefault(v, pos)
                    seg_end[v] = pos
                for v in _inst_defs(inst):
                    seg_start.setdefault(v, pos)
                    seg_end[v] = pos
                pos += 1
            for v in live_out[block]:
                seg_start.setdefault(v, block_start)
                seg_end[v] = block_end
            for v, start in seg_start.items():
                interval_of(v).add_segment(start, seg_end.get(v, start))
            position = block_end

        # World classification for RQ5 priority: values touched only by
        # recovery code (CFG_orig and handlers) are cold — they execute only
        # after a misspeculation.  The paper's artificially-low handler
        # branch weights deprioritize exactly these.
        world_by_vreg: dict[VReg, set] = {}
        for block in self.mfunc.blocks:
            world = "orig" if block.is_handler else block.world
            for inst in block.insts:
                for v in inst.vregs():
                    world_by_vreg.setdefault(v, set()).add(world)
        for vreg, interval in intervals.items():
            worlds = world_by_vreg.get(vreg, {"spec"})
            interval.world = "orig" if worlds <= {"orig"} else "spec"
        for interval in intervals.values():
            # Live across a call at position p: a segment covering p that
            # extends past it.  A segment *ending* at p is only the call's
            # argument use; one merely starting at p (the call's own result)
            # is flagged conservatively — it is defined after the clobber.
            interval.crosses_call = any(
                any(s <= pos < e for s, e in interval.segments)
                for pos in call_positions
            )
        return list(intervals.values())

    # -- assignment -----------------------------------------------------------

    def _conflicts(self, reg: int, offset: int, size: int, interval: Interval):
        """Assigned intervals overlapping [offset,size) during interval."""
        out = []
        for entry in self._assigned[reg]:
            other, off, sz = entry
            if off < offset + size and offset < off + sz:
                if interval.overlaps(other):
                    out.append(entry)
        return out

    def _candidate_regs(self, interval: Interval) -> list[int]:
        candidates = list(self.pool)
        if interval.crosses_call:
            candidates = [r for r in candidates if r in CALLEE_SAVED]
        else:
            # Prefer caller-saved so callee-saved stay free for call-crossers.
            candidates.sort(key=lambda r: (r in CALLEE_SAVED, r))
        return candidates

    def _place(self, interval: Interval, reg: int, offset: int, size: int) -> None:
        self._assigned[reg].append((interval, offset, size))
        interval.location = Slice(reg, offset, interval.vreg.size)
        if reg in CALLEE_SAVED:
            self.used_callee_saved.add(reg)
        self.location[interval.vreg] = interval.location
        self.stats.assigned_vregs += 1

    def _spill(self, interval: Interval) -> None:
        interval.location = self.mfunc.new_slot(max(interval.vreg.size, 4))
        self.location[interval.vreg] = interval.location
        self.stats.spilled_vregs += 1

    def _try_assign(self, interval: Interval) -> bool:
        size = interval.vreg.size if self.packing else 4
        for reg in self._candidate_regs(interval):
            offsets = range(0, 5 - size, size) if size < 4 else (0,)
            for offset in offsets:
                if not self._conflicts(reg, offset, size, interval):
                    self._place(interval, reg, offset, size)
                    return True
        return False

    def _try_evict(self, interval: Interval) -> bool:
        """Furthest-end heuristic: displace strictly longer-lived intervals.

        Cold (CFG_orig) intervals never evict hot ones.
        """
        size = interval.vreg.size if self.packing else 4
        best = None
        for reg in self._candidate_regs(interval):
            offsets = range(0, 5 - size, size) if size < 4 else (0,)
            for offset in offsets:
                conflicts = self._conflicts(reg, offset, size, interval)
                if not conflicts:
                    continue  # handled by _try_assign
                cold_world = "spec" if self.invert else "orig"
                evictable = all(
                    other.end > interval.end
                    and not (
                        interval.world == cold_world
                        and other.world != cold_world
                    )
                    and not (other.crosses_call and not interval.crosses_call)
                    for other, _, _ in conflicts
                )
                if not evictable:
                    continue
                cost = sum(other.weight for other, _, _ in conflicts)
                if best is None or cost < best[0]:
                    best = (cost, reg, offset, conflicts)
        if best is None:
            return False
        _, reg, offset, conflicts = best
        for entry in conflicts:
            self._assigned[reg].remove(entry)
            self._spill(entry[0])
        self._place(interval, reg, offset, size)
        return True

    def allocate(self) -> None:
        intervals = self._build_intervals()
        if self.invert:
            intervals.sort(key=lambda i: (i.world != "orig", i.start, i.vreg.id))
        else:
            intervals.sort(key=lambda i: (i.world == "orig", i.start, i.vreg.id))
        for interval in intervals:
            if self._try_assign(interval):
                continue
            if self._try_evict(interval):
                continue
            self._spill(interval)

    # -- rewriting --------------------------------------------------------------

    def _loc(self, vreg: VReg):
        loc = self.location.get(vreg)
        if loc is None:
            # Dead vreg (defined, never used, not live anywhere): park it in
            # the first scratch register.
            loc = Slice(SCRATCH0, 0, vreg.size)
            self.location[vreg] = loc
        return loc

    def rewrite(self) -> None:
        self._expand_params()
        self._expand_calls_and_rets()
        self._rewrite_spills()

    def _expand_params(self) -> None:
        entry = self.mfunc.blocks[0]
        new_insts: list[MachineInst] = []
        moves: list[tuple[object, object]] = []
        stack_loads: list[MachineInst] = []
        max_slot = -1
        for inst in entry.insts:
            if inst.opcode != "param":
                continue
            slot_index = inst.uses[0].value
            max_slot = max(max_slot, slot_index)
            dest = self._loc(inst.defs[0])
            if slot_index < len(ARG_REGS):
                moves.append((dest, Slice(ARG_REGS[slot_index], 0, 4)))
            elif isinstance(dest, FrameSlot):
                scratch = Slice(SCRATCH0, 0, 4)
                stack_loads.append(
                    MachineInst(
                        "ldr",
                        [scratch],
                        [StackArg(slot_index - len(ARG_REGS)), Imm(0)],
                        width=4,
                    )
                )
                stack_loads.append(
                    MachineInst(
                        "str", uses=[scratch, dest, Imm(0)], width=4, kind="spill"
                    )
                )
            else:
                stack_loads.append(
                    MachineInst(
                        "ldr",
                        [dest],
                        [StackArg(slot_index - len(ARG_REGS)), Imm(0)],
                        width=4,
                    )
                )
        self.mfunc.incoming_stack_bytes = max(0, (max_slot + 1 - len(ARG_REGS)) * 4)
        new_insts.extend(_sequence_moves(moves))
        new_insts.extend(stack_loads)
        entry.insts = new_insts + [i for i in entry.insts if i.opcode != "param"]

    def _expand_calls_and_rets(self) -> None:
        for block in self.mfunc.blocks:
            out: list[MachineInst] = []
            for inst in block.insts:
                if inst.opcode == "call":
                    out.extend(self._expand_call(inst))
                elif inst.opcode == "ret":
                    moves = []
                    for i, v in enumerate(inst.uses):
                        if isinstance(v, VReg):
                            moves.append((Slice(i, 0, 4), self._loc(v)))
                    out.extend(_sequence_moves(moves))
                    out.append(MachineInst("epilogue"))
                    out.append(MachineInst("bx"))
                else:
                    out.append(inst)
            block.insts = out

    def _expand_call(self, inst: MachineInst) -> list[MachineInst]:
        out: list[MachineInst] = []
        moves = []
        stack_stores = []
        outgoing = 0
        for index, arg in enumerate(inst.uses):
            src = self._loc(arg) if isinstance(arg, VReg) else arg
            if index < len(ARG_REGS):
                moves.append((Slice(ARG_REGS[index], 0, 4), src))
            else:
                offset = (index - len(ARG_REGS)) * 4
                outgoing = max(outgoing, offset + 4)
                if isinstance(src, FrameSlot):
                    out_reg = Slice(SCRATCH0, 0, 4)
                    stack_stores.append(
                        MachineInst("ldr", [out_reg], [src, Imm(0)], width=4, kind="reload")
                    )
                    src = out_reg
                stack_stores.append(
                    MachineInst("str", uses=[src, FrameSlot(-1, 4), Imm(offset)], width=4)
                )
        self.mfunc.outgoing_bytes = max(
            getattr(self.mfunc, "outgoing_bytes", 0), outgoing
        )
        out.extend(stack_stores)
        out.extend(_sequence_moves(moves))
        call = MachineInst("bl", target=inst.target)
        out.append(call)
        for i, d in enumerate(inst.defs):
            if isinstance(d, VReg):
                dest = self._loc(d)
                out.extend(_sequence_moves([(dest, Slice(i, 0, 4))]))
        return out

    def _rewrite_spills(self) -> None:
        scratches = (SCRATCH0, SCRATCH1)
        for block in self.mfunc.blocks:
            out: list[MachineInst] = []
            for inst in block.insts:
                # Debug metadata: the vreg hint (IR value name) is about
                # to be erased by the Slice rewrite — pin it on the inst
                # so Δ-layout can emit per-pc variable provenance.
                if not inst.comment:
                    for d in inst.defs:
                        if isinstance(d, VReg) and d.hint:
                            inst.comment = d.hint
                            break
                reloads: list[MachineInst] = []
                stores: list[MachineInst] = []
                scratch_index = 0
                reload_map: dict[VReg, Slice] = {}

                def resolve_use(v):
                    nonlocal scratch_index
                    if not isinstance(v, VReg):
                        return v
                    loc = self._loc(v)
                    if isinstance(loc, Slice):
                        return loc
                    if v in reload_map:
                        return reload_map[v]
                    if scratch_index >= len(scratches):
                        raise RegAllocError(
                            f"{self.mfunc.name}: >2 spilled uses in {inst!r}"
                        )
                    scratch = Slice(scratches[scratch_index], 0, v.size)
                    scratch_index += 1
                    self._scratch_used = True
                    reloads.append(
                        MachineInst(
                            "ldr", [scratch], [loc, Imm(0)], width=4, kind="reload"
                        )
                    )
                    reload_map[v] = scratch
                    return scratch

                inst.uses = [resolve_use(u) for u in inst.uses]
                new_defs = []
                def_scratches = [SCRATCH0, SCRATCH1]
                for d in inst.defs:
                    if not isinstance(d, VReg):
                        new_defs.append(d)
                        continue
                    loc = self._loc(d)
                    if isinstance(loc, Slice):
                        new_defs.append(loc)
                        continue
                    if inst.opcode == "movcond":
                        # RMW: reload current value into the scratch first.
                        current = reload_map.get(d)
                        if current is None:
                            scratch = Slice(SCRATCH0, 0, d.size)
                            reloads.append(
                                MachineInst(
                                    "ldr", [scratch], [loc, Imm(0)], width=4,
                                    kind="reload",
                                )
                            )
                            current = scratch
                        new_defs.append(current)
                        stores.append(
                            MachineInst(
                                "str", uses=[current, loc, Imm(0)], width=4,
                                kind="spill",
                            )
                        )
                        self._scratch_used = True
                        continue
                    scratch = Slice(def_scratches.pop(0), 0, d.size)
                    self._scratch_used = True
                    new_defs.append(scratch)
                    stores.append(
                        MachineInst(
                            "str", uses=[scratch, loc, Imm(0)], width=4, kind="spill"
                        )
                    )
                inst.defs = new_defs
                out.extend(reloads)
                out.append(inst)
                out.extend(stores)
                self.stats.spill_loads += len(reloads)
                self.stats.spill_stores += len(stores)
            block.insts = out

    # -- coalescing-lite: drop moves that ended up location-identical -----------

    def cleanup_moves(self) -> None:
        for block in self.mfunc.blocks:
            kept = []
            for inst in block.insts:
                if (
                    inst.opcode == "mov"
                    and inst.kind == "copy"
                    and inst.defs
                    and inst.uses
                    and inst.defs[0] == inst.uses[0]
                ):
                    continue
                if inst.opcode == "mov" and inst.kind == "copy":
                    self.stats.copies += 1
                kept.append(inst)
            block.insts = kept

    def run(self) -> AllocationStats:
        self.allocate()
        self.rewrite()
        self.cleanup_moves()
        finalize_frame(self.mfunc, self.used_callee_saved, self._scratch_used)
        self.stats.frame_bytes = self.mfunc.frame_bytes
        self.stats.assignments = {
            (f"%v{v.id}:{v.hint}" if v.hint else f"%v{v.id}"): repr(loc)
            for v, loc in sorted(
                self.location.items(), key=lambda kv: kv[0].id
            )
        }
        from repro.passes import stats as pass_stats

        pass_stats.bump("regalloc", "vregs_assigned", self.stats.assigned_vregs)
        pass_stats.bump("regalloc", "vregs_spilled", self.stats.spilled_vregs)
        pass_stats.bump("regalloc", "spill_stores", self.stats.spill_stores)
        pass_stats.bump("regalloc", "spill_loads", self.stats.spill_loads)
        pass_stats.bump("regalloc", "copies", self.stats.copies)
        return self.stats


def _sequence_moves(moves: list[tuple[object, object]]) -> list[MachineInst]:
    """Sequentialize parallel moves (dest, src), breaking cycles via scratch.

    Locations are Slices (or FrameSlots for spilled sources/dests).
    """
    pending = [
        (d, s)
        for d, s in moves
        if not (isinstance(d, Slice) and isinstance(s, Slice) and d == s)
    ]
    out: list[MachineInst] = []

    def emit_move(dest, src):
        if isinstance(src, FrameSlot) and isinstance(dest, FrameSlot):
            scratch = Slice(SCRATCH0, 0, 4)
            out.append(MachineInst("ldr", [scratch], [src, Imm(0)], width=4, kind="reload"))
            out.append(MachineInst("str", uses=[scratch, dest, Imm(0)], width=4, kind="spill"))
        elif isinstance(src, FrameSlot):
            out.append(MachineInst("ldr", [dest], [src, Imm(0)], width=4, kind="reload"))
        elif isinstance(dest, FrameSlot):
            out.append(MachineInst("str", uses=[src, dest, Imm(0)], width=4, kind="spill"))
        else:
            width = min(getattr(dest, "size", 4), 4)
            out.append(MachineInst("mov", [dest], [src], width=width, kind="copy"))

    def reg_of(loc):
        return loc.reg if isinstance(loc, Slice) else None

    while pending:
        progressed = False
        for i, (dest, src) in enumerate(pending):
            dest_reg = reg_of(dest)
            blocked = any(
                reg_of(other_src) == dest_reg and dest_reg is not None
                for j, (_, other_src) in enumerate(pending)
                if j != i
            )
            if not blocked:
                emit_move(dest, src)
                pending.pop(i)
                progressed = True
                break
        if not progressed:
            # Cycle: rotate through the scratch register.
            dest, src = pending.pop(0)
            scratch = Slice(SCRATCH0, 0, getattr(src, "size", 4))
            emit_move(scratch, src)
            pending.append((dest, scratch))
    return out


def finalize_frame(
    mfunc: MachineFunction, used_callee_saved: set, scratch_used: bool
) -> None:
    """Lay out the frame and expand prologue/epilogue + slot operands.

    Frame (low to high): [outgoing args][slots][saved regs + lr].
    """
    outgoing = getattr(mfunc, "outgoing_bytes", 0)
    offset = outgoing
    slot_offsets: dict[int, int] = {}
    for slot in mfunc.frame_slots:
        size = max(slot.size, 4)
        offset = (offset + 3) & ~3
        slot_offsets[slot.index] = offset
        offset += size
    saved = sorted(used_callee_saved)
    if scratch_used and SCRATCH1 in CALLEE_SAVED:
        pass  # r11 is outside CALLEE_SAVED in our model; nothing to save
    save_lr = mfunc.uses_calls
    saved_area = (len(saved) + (1 if save_lr else 0)) * 4
    offset = (offset + 3) & ~3
    saved_base = offset
    frame = offset + saved_area
    frame = (frame + 7) & ~7
    mfunc.frame_bytes = frame

    def resolve_uses(inst: MachineInst) -> None:
        """Rewrite FrameSlot/StackArg operands into ["sp", Imm(offset)],
        folding a following displacement Imm into the offset."""
        out_ops: list = []
        i = 0
        uses = inst.uses
        while i < len(uses):
            op = uses[i]
            if isinstance(op, (FrameSlot, StackArg)):
                if isinstance(op, StackArg):
                    base_off = frame + op.index * 4
                else:
                    base_off = 0 if op.index == -1 else slot_offsets[op.index]
                disp = 0
                if i + 1 < len(uses) and isinstance(uses[i + 1], Imm):
                    disp = uses[i + 1].value
                    i += 1
                out_ops.append("sp")
                out_ops.append(Imm(base_off + disp))
            else:
                out_ops.append(op)
            i += 1
        inst.uses = out_ops

    for block in mfunc.blocks:
        out: list[MachineInst] = []
        for inst in block.insts:
            if inst.opcode == "epilogue":
                base = saved_base
                for reg in saved:
                    out.append(
                        MachineInst(
                            "ldr", [Slice(reg, 0, 4)], ["sp", Imm(base)], width=4
                        )
                    )
                    base += 4
                if save_lr:
                    out.append(
                        MachineInst("ldr", [Slice(LR, 0, 4)], ["sp", Imm(base)], width=4)
                    )
                if frame:
                    out.append(MachineInst("addspi", uses=[Imm(frame)]))
                continue
            resolve_uses(inst)
            if inst.opcode == "addsp":
                # Alloca address: vd = sp + offset.
                inst.opcode = "add"
            out.append(inst)
        block.insts = out

    # Prologue at entry.
    prologue: list[MachineInst] = []
    if frame:
        prologue.append(MachineInst("subspi", uses=[Imm(frame)]))
    base = saved_base
    for reg in saved:
        prologue.append(
            MachineInst("str", uses=[Slice(reg, 0, 4), "sp", Imm(base)], width=4)
        )
        base += 4
    if save_lr:
        prologue.append(MachineInst("str", uses=[Slice(LR, 0, 4), "sp", Imm(base)], width=4))
    entry = mfunc.blocks[0]
    entry.insts = prologue + entry.insts
