"""Back-end: SMIR, instruction selection, slice register allocation, layout."""

from repro.backend.isel import ISelError, select_module
from repro.backend.layout import LinkedProgram, link_program
from repro.backend.mir import (
    ALLOCATABLE,
    FrameSlot,
    GlobalRef,
    Imm,
    MachineBlock,
    MachineFunction,
    MachineInst,
    MachineProgram,
    Slice,
    THUMB_ALLOCATABLE,
    VReg,
)
from repro.backend.regalloc import (
    AllocationStats,
    RegAllocError,
    RegisterAllocator,
)

__all__ = [
    "ALLOCATABLE",
    "AllocationStats",
    "FrameSlot",
    "GlobalRef",
    "ISelError",
    "Imm",
    "LinkedProgram",
    "MachineBlock",
    "MachineFunction",
    "MachineInst",
    "MachineProgram",
    "RegAllocError",
    "RegisterAllocator",
    "Slice",
    "THUMB_ALLOCATABLE",
    "VReg",
    "link_program",
    "select_module",
]
