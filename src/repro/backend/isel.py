"""Instruction selection: (S)IR → SMIR (§3.3.1–3.3.2).

Lowers each IR function onto the ARM-flavoured machine vocabulary:

* values ≤32 bits map to one virtual register sized by their type, so the
  BITSPEC allocator can pack 8-bit values into register slices;
* 64-bit values are legalized into lo/hi register pairs with carry-chained
  arithmetic (``adds``/``adc``), like a real 32-bit ARM;
* speculative IR instructions select the Table 1 ops (``bs.*``), each
  annotated with its region's handler for skeleton-block layout (§3.3.4);
* comparisons feeding a single branch fuse into ``cmp`` + ``b.<cond>``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.backend.mir import (
    GlobalRef,
    Imm,
    MachineBlock,
    MachineFunction,
    MachineInst,
    MachineProgram,
    VReg,
)
from repro.interp.memory import layout_globals
from repro.ir.block import BasicBlock
from repro.ir.cfg import reverse_postorder
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    Gep,
    Icmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.types import IntType, PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class ISelError(Exception):
    """The IR uses a construct the machine cannot lower."""


_ALU_OPCODES = {
    "add": "add",
    "sub": "sub",
    "and": "and",
    "or": "orr",
    "xor": "eor",
    "shl": "lsl",
    "lshr": "lsr",
    "ashr": "asr",
    "mul": "mul",
    "udiv": "udiv",
    "sdiv": "sdiv",
    "urem": "urem",
    "srem": "srem",
}

_BS_OPCODES = {
    "add": "bs_add",
    "sub": "bs_sub",
    "and": "bs_and",
    "or": "bs_orr",
    "xor": "bs_eor",
    "shl": "bs_lsl",
    "lshr": "bs_lsr",
}

#: max inline immediate for ALU ops (ARM modified-immediate stand-in)
_ALU_IMM_MAX = 255
#: max inline immediate for speculative ops (imm4, Table 1)
_BS_IMM_MAX = 15


def _value_size(value: Value) -> int:
    if isinstance(value.type, PointerType):
        return 4
    return value.type.size_bytes


def _is_pair(value: Value) -> bool:
    return isinstance(value.type, IntType) and value.type.bits > 32


class FunctionISel:
    """Lowers one IR function to a :class:`MachineFunction`."""

    def __init__(
        self,
        func: Function,
        program: MachineProgram,
        module: Module,
        *,
        bitspec: bool,
        slice_width: int = 8,
    ) -> None:
        self.func = func
        self.module = module
        self.program = program
        self.bitspec = bitspec
        self.slice_width = slice_width
        #: register-file footprint of a slice op (bytes); sub-byte widths
        #: still occupy one byte cell
        self.slice_bytes = max(1, (slice_width + 7) // 8)
        self.mfunc = MachineFunction(func.name)
        self.mfunc.signature = _function_signature(func)
        self.vmap: dict[Value, object] = {}
        self.bmap: dict[BasicBlock, MachineBlock] = {}
        self.fused_cmps: set[Icmp] = set()
        self.phi_copies: list[tuple[Phi, MachineBlock]] = []
        self.current: Optional[MachineBlock] = None

    # -- emission helpers ------------------------------------------------------

    def emit(self, inst: MachineInst) -> MachineInst:
        return self.current.append(inst)

    def vreg_for(self, value: Value):
        """The VReg (or (lo, hi) pair) holding ``value``; created on demand."""
        mapped = self.vmap.get(value)
        if mapped is not None:
            return mapped
        if _is_pair(value):
            mapped = (
                self.mfunc.new_vreg(4, f"{value.name}.lo"),
                self.mfunc.new_vreg(4, f"{value.name}.hi"),
            )
        else:
            mapped = self.mfunc.new_vreg(_value_size(value), value.name)
        self.vmap[value] = mapped
        return mapped

    def materialize(self, value: Value, *, fold_zext: bool = True) -> VReg:
        """A single VReg holding a ≤32-bit value (constants materialized).

        ``fold_zext=False`` forces a width-faithful vreg: ``sxt`` reads its
        extension width off the operand's allocated slice, so a folded 8-bit
        slice standing in for a wider zext result would sign-extend from the
        wrong bit.
        """
        if isinstance(value, Constant):
            vd = self.mfunc.new_vreg(_value_size(value), "const")
            self.emit(MachineInst("movi", [vd], [Imm(value.value)]))
            return vd
        if isinstance(value, GlobalVariable):
            vd = self.mfunc.new_vreg(4, f"&{value.name}")
            self.emit(MachineInst("movi", [vd], [GlobalRef(value.name)]))
            return vd
        if self.bitspec and fold_zext:
            # Zero-extension folds into operand routing on the BITSPEC ISA:
            # reading an 8-bit register slice already delivers the
            # zero-extended value (Table 1's mixed-width addressing), so a
            # consumer can use the slice vreg directly.
            folded = self._fold_zext(value)
            if folded is not None:
                return folded
        return self.vreg_for(value)

    def _fold_zext(self, value: Value) -> Optional[VReg]:
        if (
            isinstance(value, Cast)
            and value.opcode == "zext"
            and not _is_pair(value)
            and isinstance(value.value.type, IntType)
            and value.value.type.bits <= max(8, self.slice_width)
            and value.value.type.bits < 32
            and not isinstance(value.value, Constant)
        ):
            return self.vreg_for(value.value)
        return None

    def materialize_pair(self, value: Value):
        if isinstance(value, Constant):
            lo = self.mfunc.new_vreg(4, "const.lo")
            hi = self.mfunc.new_vreg(4, "const.hi")
            self.emit(MachineInst("movi", [lo], [Imm(value.value & 0xFFFFFFFF)]))
            self.emit(MachineInst("movi", [hi], [Imm(value.value >> 32)]))
            return lo, hi
        return self.vreg_for(value)

    def operand(self, value: Value, imm_max: int) -> Union[VReg, Imm]:
        """Register-or-immediate operand for ALU ops."""
        if isinstance(value, Constant) and value.value <= imm_max:
            return Imm(value.value)
        return self.materialize(value)

    # -- driver ------------------------------------------------------------------

    def run(self) -> MachineFunction:
        for block in self.func.blocks:
            mblock = self.mfunc.add_block(block.name)
            mblock.world = block.world
            mblock.is_handler = block.handler_for is not None
            if block.region is not None:
                mblock.region_id = block.region.id
            self.bmap[block] = mblock
        # Resolve handler links and successor edges.
        for block in self.func.blocks:
            mblock = self.bmap[block]
            mblock.succs = [self.bmap[s] for s in block.successors()]
            if block.region is not None and block.region.handler is not None:
                mblock.handler = self.bmap[block.region.handler]

        # Parameters: one vreg (or pair) each, defined by `param` pseudos.
        entry = self.bmap[self.func.entry]
        self.current = entry
        slot = 0
        for arg in self.func.args:
            target = self.vreg_for(arg)
            if isinstance(target, tuple):
                self.emit(MachineInst("param", [target[0]], [Imm(slot)]))
                self.emit(MachineInst("param", [target[1]], [Imm(slot + 1)]))
                slot += 2
            else:
                self.emit(MachineInst("param", [target], [Imm(slot)]))
                slot += 1
        self.mfunc.param_vregs = [self.vmap[a] for a in self.func.args]

        self._find_fusable_cmps()
        for block in reverse_postorder(self.func):
            self.current = self.bmap[block]
            for inst in block.instructions:
                self.lower(inst)
        self._insert_phi_copies()
        return self.mfunc

    def _find_fusable_cmps(self) -> None:
        for block in self.func.blocks:
            term = block.terminator
            if not isinstance(term, CondBr):
                continue
            cond = term.cond
            if (
                isinstance(cond, Icmp)
                and cond.parent is block
                and len(cond.users) == 1
            ):
                self.fused_cmps.add(cond)

    # -- phi handling ------------------------------------------------------------

    def _insert_phi_copies(self) -> None:
        """Lower phis into copies at the end of each predecessor.

        Incoming values are staged through temporaries when a block's phi
        destinations also appear as incoming sources (the swap problem).
        """
        for block in self.func.blocks:
            phis = block.phis()
            if not phis:
                continue
            preds = block.predecessors()
            for pred in preds:
                mpred = self.bmap[pred]
                moves = []
                for phi in phis:
                    incoming = phi.incoming_for_block(pred)
                    dest = self.vreg_for(phi)
                    if isinstance(dest, tuple):
                        src = self.materialize_pair_in(incoming, mpred)
                        moves.append((dest[0], src[0]))
                        moves.append((dest[1], src[1]))
                    else:
                        src = self.materialize_in(incoming, mpred, dest.size)
                        moves.append((dest, src))
                dests = {d for d, _ in moves}
                needs_staging = any(s in dests for _, s in moves)
                copy_insts = []
                if needs_staging:
                    staged = []
                    for dest, src in moves:
                        tmp = self.mfunc.new_vreg(dest.size, "phitmp")
                        copy_insts.append(
                            MachineInst("mov", [tmp], [src], width=dest.size, kind="copy")
                        )
                        staged.append((dest, tmp))
                    moves = staged
                for dest, src in moves:
                    copy_insts.append(
                        MachineInst("mov", [dest], [src], width=dest.size, kind="copy")
                    )
                self._insert_before_terminator(mpred, copy_insts)

    def _insert_before_terminator(
        self, mblock: MachineBlock, insts: list[MachineInst]
    ) -> None:
        index = len(mblock.insts)
        while index > 0 and mblock.insts[index - 1].opcode in ("b", "bcond"):
            index -= 1
        for offset, inst in enumerate(insts):
            mblock.insts.insert(index + offset, inst)

    def materialize_in(self, value: Value, mblock: MachineBlock, size: int) -> VReg:
        """Materialize ``value`` (constants included) inside ``mblock``."""
        saved = self.current
        self.current = mblock
        try:
            if isinstance(value, Constant):
                vd = self.mfunc.new_vreg(size, "const")
                inst = MachineInst("movi", [vd], [Imm(value.value)])
                self._insert_before_terminator(mblock, [inst])
                return vd
            return self.materialize(value)
        finally:
            self.current = saved

    def materialize_pair_in(self, value: Value, mblock: MachineBlock):
        saved = self.current
        self.current = mblock
        try:
            if isinstance(value, Constant):
                lo = self.mfunc.new_vreg(4, "const.lo")
                hi = self.mfunc.new_vreg(4, "const.hi")
                self._insert_before_terminator(
                    mblock,
                    [
                        MachineInst("movi", [lo], [Imm(value.value & 0xFFFFFFFF)]),
                        MachineInst("movi", [hi], [Imm(value.value >> 32)]),
                    ],
                )
                return lo, hi
            return self.vreg_for(value)
        finally:
            self.current = saved

    # -- instruction lowering ------------------------------------------------------

    def lower(self, inst: Instruction) -> None:
        if isinstance(inst, Phi):
            self.vreg_for(inst)  # dest vreg; copies inserted later
        elif isinstance(inst, BinOp):
            self.lower_binop(inst)
        elif isinstance(inst, Icmp):
            self.lower_icmp(inst)
        elif isinstance(inst, Select):
            self.lower_select(inst)
        elif isinstance(inst, Cast):
            self.lower_cast(inst)
        elif isinstance(inst, Load):
            self.lower_load(inst)
        elif isinstance(inst, Store):
            self.lower_store(inst)
        elif isinstance(inst, Gep):
            self.lower_gep(inst)
        elif isinstance(inst, Alloca):
            slot = self.mfunc.new_slot(inst.elem_type.size_bytes * inst.count)
            vd = self.vreg_for(inst)
            self.emit(MachineInst("addsp", [vd], [slot]))
        elif isinstance(inst, Call):
            self.lower_call(inst)
        elif isinstance(inst, Br):
            self.emit(MachineInst("b", target=self.bmap[inst.target]))
        elif isinstance(inst, CondBr):
            self.lower_condbr(inst)
        elif isinstance(inst, Ret):
            self.lower_ret(inst)
        else:  # pragma: no cover - defensive
            raise ISelError(f"cannot lower {inst.opcode}")

    def lower_binop(self, inst: BinOp) -> None:
        if _is_pair(inst):
            self.lower_binop_pair(inst)
            return
        size = _value_size(inst)
        vd = self.vreg_for(inst)
        if inst.speculative:
            opcode = _BS_OPCODES.get(inst.opcode)
            if opcode is None:
                raise ISelError(f"no speculative form of {inst.opcode}")
            lhs = self.materialize(inst.lhs)
            rhs = self.operand(inst.rhs, _BS_IMM_MAX)
            out = self.emit(
                MachineInst(
                    opcode, [vd], [lhs, rhs],
                    width=self.slice_bytes, speculative=True,
                )
            )
            out.handler = self.current.handler
            return
        opcode = _ALU_OPCODES[inst.opcode]
        lhs = self.materialize(inst.lhs)
        rhs = self.operand(inst.rhs, _ALU_IMM_MAX)
        self.emit(MachineInst(opcode, [vd], [lhs, rhs], width=size))

    def lower_binop_pair(self, inst: BinOp) -> None:
        lo_d, hi_d = self.vreg_for(inst)
        op = inst.opcode
        if op in ("add", "sub"):
            a_lo, a_hi = self.materialize_pair(inst.lhs)
            b_lo, b_hi = self.materialize_pair(inst.rhs)
            first, second = ("adds", "adc") if op == "add" else ("subs", "sbc")
            self.emit(MachineInst(first, [lo_d], [a_lo, b_lo]))
            self.emit(MachineInst(second, [hi_d], [a_hi, b_hi]))
            return
        if op in ("and", "or", "xor"):
            opcode = _ALU_OPCODES[op]
            a_lo, a_hi = self.materialize_pair(inst.lhs)
            b_lo, b_hi = self.materialize_pair(inst.rhs)
            self.emit(MachineInst(opcode, [lo_d], [a_lo, b_lo]))
            self.emit(MachineInst(opcode, [hi_d], [a_hi, b_hi]))
            return
        if op in ("shl", "lshr") and isinstance(inst.rhs, Constant):
            self.lower_shift_pair(inst, lo_d, hi_d)
            return
        if op == "mul":
            # 64 x 64 -> low 64: umull + two cross products into the high word.
            a_lo, a_hi = self.materialize_pair(inst.lhs)
            b_lo, b_hi = self.materialize_pair(inst.rhs)
            self.emit(MachineInst("umull", [lo_d, hi_d], [a_lo, b_lo]))
            cross1 = self.mfunc.new_vreg(4, "mulx1")
            cross2 = self.mfunc.new_vreg(4, "mulx2")
            self.emit(MachineInst("mul", [cross1], [a_lo, b_hi]))
            self.emit(MachineInst("mul", [cross2], [a_hi, b_lo]))
            self.emit(MachineInst("add", [hi_d], [hi_d, cross1]))
            self.emit(MachineInst("add", [hi_d], [hi_d, cross2]))
            return
        raise ISelError(f"64-bit {op} is not supported by the 32-bit machine")

    def lower_shift_pair(self, inst: BinOp, lo_d: VReg, hi_d: VReg) -> None:
        amount = inst.rhs.value
        a_lo, a_hi = self.materialize_pair(inst.lhs)
        if amount == 0:
            self.emit(MachineInst("mov", [lo_d], [a_lo], kind="copy"))
            self.emit(MachineInst("mov", [hi_d], [a_hi], kind="copy"))
            return
        if inst.opcode == "shl":
            if amount >= 32:
                self.emit(MachineInst("lsl", [hi_d], [a_lo, Imm(amount - 32)]))
                self.emit(MachineInst("movi", [lo_d], [Imm(0)]))
            else:
                self.emit(MachineInst("lsl", [hi_d], [a_hi, Imm(amount)]))
                self.emit(
                    MachineInst(
                        "orrsl", [hi_d], [hi_d, a_lo, Imm(-(32 - amount))]
                    )
                )
                self.emit(MachineInst("lsl", [lo_d], [a_lo, Imm(amount)]))
        else:  # lshr
            if amount >= 32:
                self.emit(MachineInst("lsr", [lo_d], [a_hi, Imm(amount - 32)]))
                self.emit(MachineInst("movi", [hi_d], [Imm(0)]))
            else:
                self.emit(MachineInst("lsr", [lo_d], [a_lo, Imm(amount)]))
                self.emit(
                    MachineInst("orrsl", [lo_d], [lo_d, a_hi, Imm(32 - amount)])
                )
                self.emit(MachineInst("lsr", [hi_d], [a_hi, Imm(amount)]))

    def _emit_cmp(self, lhs: Value, rhs: Value) -> None:
        """Emit the compare feeding a conditional (no result register)."""
        if _is_pair(lhs):
            # Two-instruction 64-bit compare (cmp + conditional-compare on
            # ARM); split keeps spill rewriting within two scratch registers.
            a_lo, a_hi = self.materialize_pair(lhs)
            b_lo, b_hi = self.materialize_pair(rhs)
            self.emit(MachineInst("cmp64hi", uses=[a_hi, b_hi]))
            self.emit(MachineInst("cmp64lo", uses=[a_lo, b_lo]))
            return
        narrow = (
            isinstance(lhs.type, IntType)
            and lhs.type.bits <= max(8, self.slice_width)
            and lhs.type.bits < 32
            and isinstance(rhs.type, IntType)
        )
        a = self.materialize(lhs)
        if narrow and self.bitspec:
            b = self.operand(rhs, _BS_IMM_MAX)
            # width carries the operand's byte size: the slice compare unit
            # interprets signedness at the operand width, not the sweep's
            # global slice width.
            self.emit(
                MachineInst("bs_cmp", uses=[a, b], width=_value_size(lhs))
            )
        else:
            b = self.operand(rhs, _ALU_IMM_MAX)
            self.emit(MachineInst("cmp", uses=[a, b], width=_value_size(lhs)))

    def lower_icmp(self, inst: Icmp) -> None:
        if inst in self.fused_cmps:
            return  # emitted by the branch
        vd = self.vreg_for(inst)
        self.emit(MachineInst("movi", [vd], [Imm(0)]))
        self._emit_cmp(inst.lhs, inst.rhs)
        self.emit(MachineInst("movcond", [vd], [Imm(1)], cond=inst.pred))

    def lower_select(self, inst: Select) -> None:
        cond = self.materialize(inst.cond)
        if _is_pair(inst):
            lo_d, hi_d = self.vreg_for(inst)
            f_lo, f_hi = self.materialize_pair(inst.false_value)
            t_lo, t_hi = self.materialize_pair(inst.true_value)
            self.emit(MachineInst("mov", [lo_d], [f_lo], kind="copy"))
            self.emit(MachineInst("mov", [hi_d], [f_hi], kind="copy"))
            self.emit(MachineInst("cmp", uses=[cond, Imm(0)], width=1))
            self.emit(MachineInst("movcond", [lo_d], [t_lo], cond="ne"))
            self.emit(MachineInst("movcond", [hi_d], [t_hi], cond="ne"))
            return
        vd = self.vreg_for(inst)
        fval = self.materialize(inst.false_value)
        tval = self.materialize(inst.true_value)
        self.emit(MachineInst("mov", [vd], [fval], width=vd.size, kind="copy"))
        self.emit(MachineInst("cmp", uses=[cond, Imm(0)], width=1))
        self.emit(MachineInst("movcond", [vd], [tval], cond="ne", width=vd.size))

    def lower_cast(self, inst: Cast) -> None:
        source = inst.value
        if inst.opcode == "trunc" and inst.speculative:
            vd = self.vreg_for(inst)
            src = (
                self.materialize_pair(source)[0]
                if _is_pair(source)
                else self.materialize(source)
            )
            out = self.emit(
                MachineInst(
                    "bs_trunc", [vd], [src],
                    width=self.slice_bytes, speculative=True,
                )
            )
            out.handler = self.current.handler
            if _is_pair(source):
                # The high word must also be zero; monitor it too.
                hi = self.materialize_pair(source)[1]
                chk = self.emit(
                    MachineInst("bs_trunc_hi", uses=[hi], width=1, speculative=True)
                )
                chk.handler = self.current.handler
            return
        if _is_pair(inst):
            lo_d, hi_d = self.vreg_for(inst)
            if inst.opcode == "zext":
                src = self.materialize(source)
                self.emit(MachineInst("uxt", [lo_d], [src], width=4))
                self.emit(MachineInst("movi", [hi_d], [Imm(0)]))
            elif inst.opcode == "sext":
                src = self.materialize(source, fold_zext=False)
                self.emit(MachineInst("sxt", [lo_d], [src], width=4))
                self.emit(MachineInst("asr", [hi_d], [lo_d, Imm(31)]))
            else:
                raise ISelError("trunc cannot produce a 64-bit value")
            return
        vd = self.vreg_for(inst)
        if _is_pair(source):
            lo, _hi = self.materialize_pair(source)
            self.emit(MachineInst("trunc", [vd], [lo], width=vd.size))
            return
        src = self.materialize(source, fold_zext=(inst.opcode != "sext"))
        if inst.opcode == "zext":
            self.emit(MachineInst("uxt", [vd], [src], width=vd.size))
        elif inst.opcode == "sext":
            self.emit(MachineInst("sxt", [vd], [src], width=vd.size))
        else:
            self.emit(MachineInst("trunc", [vd], [src], width=vd.size))

    def lower_load(self, inst: Load) -> None:
        addr = self.materialize(inst.ptr)
        elem_size = inst.ptr.type.pointee.size_bytes
        if inst.speculative:
            vd = self.vreg_for(inst)
            out = self.emit(
                MachineInst(
                    "bs_ldr", [vd], [addr, Imm(elem_size)],
                    width=self.slice_bytes, speculative=True,
                )
            )
            out.handler = self.current.handler
            return
        if _is_pair(inst):
            lo_d, hi_d = self.vreg_for(inst)
            self.emit(MachineInst("ldr", [lo_d], [addr, Imm(0)]))
            self.emit(MachineInst("ldr", [hi_d], [addr, Imm(4)]))
            return
        vd = self.vreg_for(inst)
        opcode = {1: "ldrb", 2: "ldrh", 4: "ldr"}[elem_size]
        self.emit(MachineInst(opcode, [vd], [addr, Imm(0)], width=elem_size))

    def lower_store(self, inst: Store) -> None:
        addr = self.materialize(inst.ptr)
        elem_size = inst.ptr.type.pointee.size_bytes
        if elem_size == 8:
            lo, hi = self.materialize_pair(inst.value)
            self.emit(MachineInst("str", uses=[lo, addr, Imm(0)]))
            self.emit(MachineInst("str", uses=[hi, addr, Imm(4)]))
            return
        value = self.materialize(inst.value)
        opcode = {1: "strb", 2: "strh", 4: "str"}[elem_size]
        self.emit(MachineInst(opcode, uses=[value, addr, Imm(0)], width=elem_size))

    def lower_gep(self, inst: Gep) -> None:
        vd = self.vreg_for(inst)
        base = self.materialize(inst.ptr)
        size = inst.type.pointee.size_bytes
        index = inst.index
        if isinstance(index, Constant):
            offset = index.type.to_signed(index.value) * size
            if 0 <= offset <= _ALU_IMM_MAX:
                self.emit(MachineInst("add", [vd], [base, Imm(offset)]))
            else:
                tmp = self.mfunc.new_vreg(4, "goff")
                self.emit(MachineInst("movi", [tmp], [Imm(offset & 0xFFFFFFFF)]))
                self.emit(MachineInst("add", [vd], [base, tmp]))
            return
        idx = self.materialize(index)
        if idx.size < 4:
            wide = self.mfunc.new_vreg(4, "idx")
            self.emit(MachineInst("uxt", [wide], [idx], width=4))
            idx = wide
        if size == 1:
            self.emit(MachineInst("add", [vd], [base, idx]))
        else:
            shift = {2: 1, 4: 2, 8: 3}[size]
            self.emit(MachineInst("addsl", [vd], [base, idx, Imm(shift)]))

    def lower_call(self, inst: Call) -> None:
        if inst.callee == "__out":
            value = self.materialize(inst.args[0])
            self.emit(MachineInst("out", uses=[value]))
            return
        self.mfunc.uses_calls = True
        uses: list = []
        for arg in inst.args:
            if _is_pair(arg):
                lo, hi = self.materialize_pair(arg)
                uses.extend([lo, hi])
            else:
                uses.append(self.materialize(arg))
        defs: list = []
        if inst.has_result:
            mapped = self.vreg_for(inst)
            defs = list(mapped) if isinstance(mapped, tuple) else [mapped]
        self.emit(MachineInst("call", defs, uses, target=inst.callee))

    def lower_condbr(self, inst: CondBr) -> None:
        cond = inst.cond
        if isinstance(cond, Icmp) and cond in self.fused_cmps:
            self._emit_cmp(cond.lhs, cond.rhs)
            pred = cond.pred
        elif isinstance(cond, Constant):
            target = inst.if_true if cond.value else inst.if_false
            self.emit(MachineInst("b", target=self.bmap[target]))
            return
        else:
            c = self.materialize(cond)
            self.emit(MachineInst("cmp", uses=[c, Imm(0)], width=1))
            pred = "ne"
        self.emit(MachineInst("bcond", cond=pred, target=self.bmap[inst.if_true]))
        self.emit(MachineInst("b", target=self.bmap[inst.if_false]))

    def lower_ret(self, inst: Ret) -> None:
        uses: list = []
        if inst.value is not None:
            if _is_pair(inst.value):
                lo, hi = self.materialize_pair(inst.value)
                uses = [lo, hi]
            else:
                uses = [self.materialize(inst.value)]
        self.emit(MachineInst("ret", uses=uses))


_PURE_OPCODES = frozenset(
    {
        "mov",
        "movi",
        "uxt",
        "sxt",
        "trunc",
        "add",
        "sub",
        "and",
        "orr",
        "eor",
        "lsl",
        "lsr",
        "asr",
        "mul",
        "addsl",
        "orrsl",
    }
)


def remove_dead_machine_code(mfunc: MachineFunction) -> int:
    """Drop side-effect-free instructions whose results are never read.

    Zext folding leaves the original extension instructions dangling; this
    pass (pre-allocation, so operands are still VRegs) sweeps them.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        used: set[VReg] = set()
        for block in mfunc.blocks:
            for inst in block.insts:
                for op in inst.uses:
                    if isinstance(op, VReg):
                        used.add(op)
                if inst.opcode == "movcond":
                    for op in inst.defs:
                        if isinstance(op, VReg):
                            used.add(op)
        for block in mfunc.blocks:
            kept = []
            for inst in block.insts:
                if (
                    inst.opcode in _PURE_OPCODES
                    and inst.defs
                    and all(isinstance(d, VReg) for d in inst.defs)
                    and not any(d in used for d in inst.defs)
                ):
                    removed += 1
                    changed = True
                    continue
                kept.append(inst)
            block.insts = kept
    return removed


def _function_signature(func: Function) -> dict:
    """Source-level signature metadata for link-time debug info.

    :mod:`repro.verify` uses this to delimit per-function entry state (one
    ``(name, bits, pointer)`` triple per formal parameter) and to mask the
    exit-state comparison to the declared return width.
    """
    params = []
    for arg in func.args:
        if isinstance(arg.type, PointerType):
            params.append((arg.name, 32, True))
        else:
            params.append((arg.name, arg.type.bits, False))
    ret = None
    if isinstance(func.ret_type, IntType):
        ret = func.ret_type.bits
    return {"params": tuple(params), "return_bits": ret}


def select_module(
    module: Module, *, isa: str = "ARM", name: str = "program",
    slice_width: int = 8, baseline_functions: frozenset = frozenset(),
) -> MachineProgram:
    """Lower a whole module; ``isa`` ∈ {ARM, ARM_BS, THUMB}.

    ``baseline_functions`` names functions lowered with ``bitspec=False``
    even on ARM_BS — the pipeline's graceful-degradation fallback, which
    produces a mixed-world binary instead of failing the whole compile.
    """
    program = MachineProgram(name, isa)
    program.global_addresses = layout_globals(module)
    bitspec = isa == "ARM_BS"
    for func in module.functions.values():
        isel = FunctionISel(
            func, program, module,
            bitspec=bitspec and func.name not in baseline_functions,
            slice_width=slice_width,
        )
        mfunc = isel.run()
        remove_dead_machine_code(mfunc)
        program.add_function(mfunc)
    return program
