"""Speculative Machine IR (SMIR, §3.1.3) — the back-end's program form.

SMIR extends the IR's speculative-region structure down to machine level:
machine blocks carry their region id and world tag; the register allocator
applies the SMIR predecessor rule (Eq. 2) so values a handler needs stay
live across the whole region.

Machine instructions are ARM-flavoured three-address ops over virtual
registers; physical registers materialize during/after allocation as
:class:`Slice` locations (register index + byte offset + byte size), the
register-file view the BITSPEC microarchitecture exposes (§3.5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

# -- machine configuration -----------------------------------------------------

NUM_REGS = 16
SP = 13
LR = 14
PC = 15
SCRATCH0 = 12  # ip: spill/reload scratch
SCRATCH1 = 11  # second scratch (two-operand reloads)
ARG_REGS = (0, 1, 2, 3)
RET_REG = 0
#: registers preserved across calls
CALLEE_SAVED = frozenset({4, 5, 6, 7, 8, 9, 10})
#: default allocatable pool (baseline / BITSPEC ISAs)
ALLOCATABLE = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
#: Thumb-like compact ISA: only the low registers allocate
THUMB_ALLOCATABLE = (0, 1, 2, 3, 4, 5, 6, 7)


@dataclass(frozen=True)
class VReg:
    """A virtual register: ``size`` bytes wide (1, 2 or 4)."""

    id: int
    size: int
    hint: str = ""

    def __repr__(self) -> str:
        return f"%v{self.id}.{self.size}"


@dataclass(frozen=True)
class Slice:
    """A physical location: ``size`` bytes at ``offset`` within register ``reg``."""

    reg: int
    offset: int
    size: int

    def __repr__(self) -> str:
        if self.offset == 0 and self.size == 4:
            return f"r{self.reg}"
        return f"r{self.reg}.b{self.offset}:{self.size}"


@dataclass(frozen=True)
class Imm:
    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class GlobalRef:
    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class FrameSlot:
    """An abstract stack slot (spill or alloca), resolved at frame layout."""

    index: int
    size: int

    def __repr__(self) -> str:
        return f"fs{self.index}"


Operand = Union[VReg, Slice, Imm, GlobalRef, FrameSlot, str]


class MachineInst:
    """One machine instruction.

    ``defs``/``uses`` hold :class:`VReg` before allocation and
    :class:`Slice` afterwards; other operand kinds pass through.  ``width``
    is the operation width in bytes (1 = an 8-bit slice operation of the
    BITSPEC ISA); ``speculative`` marks Table 1 ops monitored for
    misspeculation.
    """

    __slots__ = (
        "opcode",
        "defs",
        "uses",
        "width",
        "speculative",
        "cond",
        "target",
        "kind",
        "handler",
        "comment",
    )

    def __init__(
        self,
        opcode: str,
        defs: Optional[list] = None,
        uses: Optional[list] = None,
        *,
        width: int = 4,
        speculative: bool = False,
        cond: Optional[str] = None,
        target: Optional[object] = None,
        kind: str = "",
    ) -> None:
        self.opcode = opcode
        self.defs = defs or []
        self.uses = uses or []
        self.width = width
        self.speculative = speculative
        self.cond = cond  # branch/condmov condition code
        self.target = target  # MachineBlock or function name
        self.kind = kind  # 'spill' | 'reload' | 'copy' | '' (for Fig 10)
        self.handler = None  # resolved handler block for speculative insts
        self.comment = ""

    def vregs(self) -> list[VReg]:
        return [op for op in self.defs + self.uses if isinstance(op, VReg)]

    def __repr__(self) -> str:
        parts = [self.opcode]
        if self.cond:
            parts[0] += f".{self.cond}"
        ops = ", ".join(repr(o) for o in self.defs + self.uses)
        if ops:
            parts.append(ops)
        if self.target is not None:
            name = getattr(self.target, "name", self.target)
            parts.append(f"-> {name}")
        text = " ".join(parts)
        if self.width == 1:
            text += "  ;8b"
        if self.speculative:
            text += " !spec"
        return text


class MachineBlock:
    """A machine basic block."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.insts: list[MachineInst] = []
        self.succs: list["MachineBlock"] = []
        self.region_id: Optional[int] = None
        self.handler: Optional["MachineBlock"] = None  # for region blocks
        self.is_handler = False
        self.world: Optional[str] = None
        self.address: int = -1  # filled by layout

    def append(self, inst: MachineInst) -> MachineInst:
        self.insts.append(inst)
        return inst

    def __repr__(self) -> str:
        return f"<MBB {self.name} ({len(self.insts)})>"


class MachineFunction:
    """A machine function: blocks + frame bookkeeping."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: list[MachineBlock] = []
        self._vreg_ids = itertools.count()
        self._slot_ids = itertools.count()
        self.frame_slots: list[FrameSlot] = []
        self.param_vregs: list = []  # VReg or (lo, hi) pairs
        self.uses_calls = False
        #: number of stack-passed argument bytes this function expects
        self.incoming_stack_bytes = 0

    def new_vreg(self, size: int, hint: str = "") -> VReg:
        return VReg(next(self._vreg_ids), size, hint)

    def new_slot(self, size: int) -> FrameSlot:
        slot = FrameSlot(next(self._slot_ids), size)
        self.frame_slots.append(slot)
        return slot

    def add_block(self, name: str) -> MachineBlock:
        block = MachineBlock(name)
        self.blocks.append(block)
        return block

    def instruction_count(self) -> int:
        return sum(len(b.insts) for b in self.blocks)

    def __repr__(self) -> str:
        return f"<MachineFunction {self.name} ({len(self.blocks)} blocks)>"


class MachineProgram:
    """A lowered module: machine functions + global memory layout."""

    def __init__(self, name: str, isa: str) -> None:
        self.name = name
        self.isa = isa
        self.functions: dict[str, MachineFunction] = {}
        self.global_addresses: dict[str, int] = {}
        self.entry = "main"

    def add_function(self, func: MachineFunction) -> MachineFunction:
        self.functions[func.name] = func
        return func

    def dump(self) -> str:
        lines = [f"; machine program {self.name} [{self.isa}]"]
        for func in self.functions.values():
            lines.append(f"\n{func.name}:")
            for block in func.blocks:
                tag = ""
                if block.is_handler:
                    tag = "  ; handler"
                elif block.region_id is not None:
                    tag = f"  ; SR#{block.region_id}"
                lines.append(f" {block.name}:{tag}")
                for inst in block.insts:
                    lines.append(f"   {inst!r}")
        return "\n".join(lines)
