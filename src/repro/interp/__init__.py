"""Functional simulation: IR interpreter + flat memory model."""

from repro.interp.interpreter import (
    Interpreter,
    RunResult,
    StepLimitExceeded,
    Trace,
    TrapError,
    VarStats,
    bucket,
)
from repro.interp.memory import (
    FlatMemory,
    GLOBALS_BASE,
    STACK_TOP,
    initialize_globals,
    layout_globals,
    read_global,
)

__all__ = [
    "FlatMemory",
    "GLOBALS_BASE",
    "Interpreter",
    "RunResult",
    "STACK_TOP",
    "StepLimitExceeded",
    "Trace",
    "TrapError",
    "VarStats",
    "bucket",
    "initialize_globals",
    "layout_globals",
    "read_global",
]
