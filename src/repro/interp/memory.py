"""Flat byte-addressable memory shared by the interpreter and the machine.

Little-endian, fixed layout:

* globals start at :data:`GLOBALS_BASE`, laid out in declaration order with
  natural alignment;
* the stack starts at :data:`STACK_TOP` and grows downward.
"""

from __future__ import annotations

from repro.ir.function import Module
from repro.ir.types import IntType

GLOBALS_BASE = 0x1000
STACK_TOP = 0x400000
MEMORY_SIZE = 0x400000


class FlatMemory:
    """A flat little-endian byte array with typed accessors."""

    def __init__(self, size: int = MEMORY_SIZE) -> None:
        self.size = size
        self.data = bytearray(size)

    def load(self, addr: int, size_bytes: int) -> int:
        """Read an unsigned little-endian value of ``size_bytes`` bytes."""
        if addr < 0 or addr + size_bytes > self.size:
            raise MemoryError(f"load out of bounds: 0x{addr:x}+{size_bytes}")
        return int.from_bytes(self.data[addr : addr + size_bytes], "little")

    def store(self, addr: int, value: int, size_bytes: int) -> None:
        """Write an unsigned little-endian value of ``size_bytes`` bytes."""
        if addr < 0 or addr + size_bytes > self.size:
            raise MemoryError(f"store out of bounds: 0x{addr:x}+{size_bytes}")
        mask = (1 << (8 * size_bytes)) - 1
        self.data[addr : addr + size_bytes] = (value & mask).to_bytes(
            size_bytes, "little"
        )


def layout_globals(module: Module) -> dict[str, int]:
    """Assign addresses to module globals; returns name -> base address."""
    addresses: dict[str, int] = {}
    cursor = GLOBALS_BASE
    for gv in module.globals.values():
        align = gv.elem_type.size_bytes
        cursor = (cursor + align - 1) & ~(align - 1)
        addresses[gv.name] = cursor
        cursor += gv.size_bytes
    if cursor >= STACK_TOP:
        raise MemoryError("globals overflow into the stack region")
    return addresses


def initialize_globals(
    memory: FlatMemory, module: Module, addresses: dict[str, int]
) -> None:
    """Write global initializers into memory."""
    for gv in module.globals.values():
        base = addresses[gv.name]
        size = gv.elem_type.size_bytes
        for i, value in enumerate(gv.initializer):
            memory.store(base + i * size, value, size)


def read_global(
    memory: FlatMemory,
    module: Module,
    addresses: dict[str, int],
    name: str,
) -> list[int]:
    """Read back a global's current contents as a list of elements."""
    gv = module.globals[name]
    base = addresses[name]
    size = gv.elem_type.size_bytes
    return [memory.load(base + i * size, size) for i in range(gv.count)]
