"""IR interpreter — the functional simulator of the compilation pipeline.

Executes a :class:`~repro.ir.function.Module` with exact wrapping integer
semantics, emulating SIR speculation: a speculative instruction whose result
does not fit its squeezed type *misspeculates*, transferring control to the
containing region's handler (the software path the BITSPEC hardware triggers
via PC+Δ).

The interpreter doubles as the *bitwidth profiler's* measurement engine: with
``trace=True`` it records, per SSA variable, the number of dynamic
assignments and the min/avg/max ``RequiredBits`` over them (§3.2.2), plus the
aggregate bitwidth histograms behind Figures 1 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.interp.memory import (
    FlatMemory,
    STACK_TOP,
    initialize_globals,
    layout_globals,
)
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    Gep,
    Icmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.types import IntType, required_bits
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class TrapError(Exception):
    """The program performed an undefined operation (e.g. division by zero)."""


class StepLimitExceeded(Exception):
    """The program exceeded the interpreter's dynamic instruction budget."""


@dataclass
class VarStats:
    """Dynamic RequiredBits statistics for one SSA variable (§3.2.2)."""

    count: int = 0
    total_bits: int = 0
    min_bits: int = 64
    max_bits: int = 0

    def record(self, bits: int) -> None:
        self.count += 1
        self.total_bits += bits
        if bits < self.min_bits:
            self.min_bits = bits
        if bits > self.max_bits:
            self.max_bits = bits

    @property
    def avg_bits(self) -> float:
        return self.total_bits / self.count if self.count else 0.0


def bucket(bits: int) -> int:
    """Histogram bucket (8/16/32/64) for a bit count."""
    for edge in (8, 16, 32):
        if bits <= edge:
            return edge
    return 64


@dataclass
class Trace:
    """Aggregated dynamic statistics of one execution."""

    instructions: int = 0
    int_instructions: int = 0
    #: dynamic integer instructions bucketed by declared result width (Fig 1b)
    declared_hist: dict[int, int] = field(
        default_factory=lambda: {8: 0, 16: 0, 32: 0, 64: 0}
    )
    #: dynamic integer instructions bucketed by RequiredBits (Fig 1a)
    required_hist: dict[int, int] = field(
        default_factory=lambda: {8: 0, 16: 0, 32: 0, 64: 0}
    )
    #: per-variable RequiredBits statistics, keyed by (function, value name)
    var_stats: dict[tuple[str, str], VarStats] = field(default_factory=dict)
    misspeculations: int = 0
    #: misspeculations per (function, region id)
    misspec_by_region: dict[tuple[str, int], int] = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of a program run."""

    return_value: Optional[int]
    output: list[int]
    trace: Trace
    memory: FlatMemory
    global_addresses: dict[str, int]


class Interpreter:
    """Executes IR modules; see module docstring."""

    def __init__(
        self,
        module: Module,
        *,
        trace: bool = False,
        step_limit: int = 200_000_000,
    ) -> None:
        self.module = module
        self.tracing = trace
        self.step_limit = step_limit
        self.memory = FlatMemory()
        self.global_addresses = layout_globals(module)
        initialize_globals(self.memory, module, self.global_addresses)
        self.trace = Trace()
        self.output: list[int] = []
        self._sp = STACK_TOP
        self._steps = 0

    # -- public API ----------------------------------------------------------

    def run(self, entry: str = "main", args: Optional[list[int]] = None) -> RunResult:
        """Run ``entry`` with integer ``args``; returns the result bundle."""
        func = self.module.function(entry)
        value = self._call(func, list(args or []))
        return RunResult(
            return_value=value,
            output=self.output,
            trace=self.trace,
            memory=self.memory,
            global_addresses=self.global_addresses,
        )

    # -- evaluation ------------------------------------------------------------

    def _operand(self, env: dict[Value, int], value: Value) -> int:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalVariable):
            return self.global_addresses[value.name]
        return env[value]

    def _call(self, func: Function, args: list[int]) -> Optional[int]:
        if len(args) != len(func.args):
            raise TrapError(
                f"{func.name}: expected {len(func.args)} args, got {len(args)}"
            )
        env: dict[Value, int] = {}
        for formal, actual in zip(func.args, args):
            value = formal.type.wrap(actual)
            env[formal] = value
            if self.tracing and isinstance(formal.type, IntType):
                # Arguments are profiled like variables (they are assigned a
                # value per invocation) but are not dynamic instructions.
                key = (func.name, formal.name)
                stats = self.trace.var_stats.get(key)
                if stats is None:
                    stats = VarStats()
                    self.trace.var_stats[key] = stats
                stats.record(required_bits(value))
        saved_sp = self._sp
        try:
            return self._run_blocks(func, env)
        finally:
            self._sp = saved_sp

    def _run_blocks(self, func: Function, env: dict[Value, int]) -> Optional[int]:
        tracing = self.tracing
        trace = self.trace
        block = func.entry
        pred = None
        while True:
            phis = block.phis()
            if phis:
                staged = [
                    (phi, self._operand(env, phi.incoming_for_block(pred)))
                    for phi in phis
                ]
                for phi, value in staged:
                    env[phi] = value
                    self._steps += 1
                    if tracing:
                        self._record(trace, func, phi, value)
            transfer = None
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    continue
                self._steps += 1
                if self._steps > self.step_limit:
                    raise StepLimitExceeded(f"at {func.name}:{block.name}")
                transfer = self._execute(func, env, block, inst)
                if transfer is not None:
                    break
            if transfer is None:
                raise TrapError(f"{func.name}:{block.name} fell off block end")
            kind, payload = transfer
            if kind == "ret":
                return payload
            pred, block = payload

    def _record(
        self, trace: Trace, func: Function, inst: Instruction, value: int
    ) -> None:
        trace.instructions += 1
        if isinstance(inst.type, IntType):
            trace.int_instructions += 1
            bits = required_bits(value)
            trace.declared_hist[bucket(inst.type.bits)] += 1
            trace.required_hist[bucket(bits)] += 1
            key = (func.name, inst.name)
            stats = trace.var_stats.get(key)
            if stats is None:
                stats = VarStats()
                trace.var_stats[key] = stats
            stats.record(bits)
        else:
            trace.instructions += 0

    def _misspeculate(self, func: Function, block) -> tuple:
        region = block.region
        if region is None or region.handler is None:
            raise TrapError(
                f"{func.name}:{block.name}: misspeculation outside a region"
            )
        self.trace.misspeculations += 1
        key = (func.name, region.id)
        self.trace.misspec_by_region[key] = (
            self.trace.misspec_by_region.get(key, 0) + 1
        )
        return ("jump", (block, region.handler))

    def _execute(
        self,
        func: Function,
        env: dict[Value, int],
        block,
        inst: Instruction,
    ):
        tracing = self.tracing
        result: Optional[int] = None

        if isinstance(inst, BinOp):
            lhs = self._operand(env, inst.lhs)
            rhs = self._operand(env, inst.rhs)
            ty: IntType = inst.type
            wide, result = _binop(inst.opcode, lhs, rhs, ty)
            if inst.speculative and wide != result:
                # Carry/borrow out of the 8-bit slice: misspeculation.
                return self._misspeculate(func, block)
        elif isinstance(inst, Icmp):
            result = int(_icmp(inst.pred, self._operand(env, inst.lhs),
                               self._operand(env, inst.rhs), inst.lhs.type))
        elif isinstance(inst, Select):
            cond = self._operand(env, inst.cond)
            result = self._operand(
                env, inst.true_value if cond else inst.false_value
            )
        elif isinstance(inst, Cast):
            value = self._operand(env, inst.value)
            if inst.opcode == "zext":
                result = value
            elif inst.opcode == "sext":
                result = inst.type.wrap(inst.value.type.to_signed(value))
            else:  # trunc
                result = inst.type.wrap(value)
                if inst.speculative and result != value:
                    return self._misspeculate(func, block)
        elif isinstance(inst, Load):
            ptr = self._operand(env, inst.ptr)
            elem = inst.ptr.type.pointee
            value = self.memory.load(ptr, elem.size_bytes)
            value &= elem.mask
            if inst.speculative:
                # Speculative load: full-width read, narrow result.
                result = inst.type.wrap(value)
                if result != value:
                    return self._misspeculate(func, block)
            else:
                result = inst.type.wrap(value)
        elif isinstance(inst, Store):
            ptr = self._operand(env, inst.ptr)
            elem = inst.ptr.type.pointee
            self.memory.store(ptr, self._operand(env, inst.value), elem.size_bytes)
        elif isinstance(inst, Gep):
            base = self._operand(env, inst.ptr)
            index = self._operand(env, inst.index)
            index = inst.index.type.to_signed(index)
            result = (base + index * inst.type.pointee.size_bytes) & 0xFFFFFFFF
        elif isinstance(inst, Alloca):
            size = inst.elem_type.size_bytes * inst.count
            align = inst.elem_type.size_bytes
            self._sp = (self._sp - size) & ~(align - 1)
            result = self._sp
        elif isinstance(inst, Call):
            if inst.callee == "__out":
                self.output.extend(self._operand(env, a) for a in inst.args)
            else:
                callee = self.module.function(inst.callee)
                value = self._call(callee, [self._operand(env, a) for a in inst.args])
                if inst.has_result:
                    result = inst.type.wrap(value if value is not None else 0)
        elif isinstance(inst, Br):
            if tracing:
                self.trace.instructions += 1
            return ("jump", (block, inst.target))
        elif isinstance(inst, CondBr):
            if tracing:
                self.trace.instructions += 1
            cond = self._operand(env, inst.cond)
            return ("jump", (block, inst.if_true if cond else inst.if_false))
        elif isinstance(inst, Ret):
            if tracing:
                self.trace.instructions += 1
            value = (
                self._operand(env, inst.value) if inst.value is not None else None
            )
            return ("ret", value)
        else:  # pragma: no cover - defensive
            raise TrapError(f"cannot interpret {inst.opcode}")

        if result is not None:
            env[inst] = result
            if tracing:
                self._record(self.trace, func, inst, result)
        elif tracing:
            self.trace.instructions += 1
        return None


def evaluate_binop(op: str, lhs: int, rhs: int, ty: IntType) -> int:
    """Public constant-folding helper: wrapped result of a binary op."""
    return _binop(op, lhs, rhs, ty)[1]


def evaluate_icmp(pred: str, lhs: int, rhs: int, ty: IntType) -> bool:
    """Public constant-folding helper: result of an integer comparison."""
    return _icmp(pred, lhs, rhs, ty)


def _binop(op: str, lhs: int, rhs: int, ty: IntType) -> tuple[int, int]:
    """Evaluate a binary op; returns (untruncated, wrapped) results.

    The untruncated value is used for misspeculation detection: a speculative
    op misspeculates iff wrapping changed the value (carry/borrow out of the
    slice, Table 1).
    """
    if op == "add":
        wide = lhs + rhs
    elif op == "sub":
        wide = lhs - rhs
        if wide < 0:
            # Borrow: wrapped result differs from the mathematical result.
            return wide, ty.wrap(wide)
    elif op == "mul":
        wide = lhs * rhs
    elif op == "and":
        wide = lhs & rhs
    elif op == "or":
        wide = lhs | rhs
    elif op == "xor":
        wide = lhs ^ rhs
    elif op == "shl":
        wide = lhs << rhs if rhs < 64 else 0
    elif op == "lshr":
        wide = lhs >> rhs if rhs < 64 else 0
    elif op == "ashr":
        signed = ty.to_signed(lhs)
        shift = min(rhs, ty.bits - 1) if rhs >= ty.bits else rhs
        wide = ty.wrap(signed >> shift)
    elif op == "udiv":
        if rhs == 0:
            raise TrapError("udiv by zero")
        wide = lhs // rhs
    elif op == "urem":
        if rhs == 0:
            raise TrapError("urem by zero")
        wide = lhs % rhs
    elif op == "sdiv":
        if rhs == 0:
            raise TrapError("sdiv by zero")
        a, b = ty.to_signed(lhs), ty.to_signed(rhs)
        q = abs(a) // abs(b)
        wide = ty.wrap(-q if (a < 0) != (b < 0) else q)
    elif op == "srem":
        if rhs == 0:
            raise TrapError("srem by zero")
        a, b = ty.to_signed(lhs), ty.to_signed(rhs)
        r = abs(a) % abs(b)
        wide = ty.wrap(-r if a < 0 else r)
    else:  # pragma: no cover - defensive
        raise TrapError(f"unknown binop {op}")
    return wide, ty.wrap(wide)


def _icmp(pred: str, lhs: int, rhs: int, ty) -> bool:
    if pred == "eq":
        return lhs == rhs
    if pred == "ne":
        return lhs != rhs
    if pred == "ult":
        return lhs < rhs
    if pred == "ule":
        return lhs <= rhs
    if pred == "ugt":
        return lhs > rhs
    if pred == "uge":
        return lhs >= rhs
    a, b = ty.to_signed(lhs), ty.to_signed(rhs)
    if pred == "slt":
        return a < b
    if pred == "sle":
        return a <= b
    if pred == "sgt":
        return a > b
    if pred == "sge":
        return a >= b
    raise TrapError(f"unknown icmp predicate {pred}")  # pragma: no cover
