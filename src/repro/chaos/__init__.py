"""Deterministic process-chaos campaigns.

Where :mod:`repro.faults` injects *architectural* faults (bit flips in
the register file, caches, and speculation machinery) and classifies
what the speculation contract's detection mechanisms absorb, this
package injects *process-level* failures — workers killed mid-task,
cache shards and journal tails torn or bit-flipped, disk-full writes,
the serve loop restarted mid-burst — and classifies what the repo's
crash-safety machinery absorbs: simulation snapshots
(:mod:`repro.arch.checkpoint`), the write-ahead job journal
(:mod:`repro.serve.journal`), and the checksummed atomic cache
(:mod:`repro.bench.cache`).

The taxonomy deliberately mirrors the fault campaigns: every injection
lands in exactly one of ``recovered`` / ``degraded`` / ``lost-work`` /
``corruption``, the campaign JSON is byte-identical for a given seed,
and the CLI (``python -m repro.chaos``) exits non-zero on any
``corruption`` — the hard gate CI enforces.
"""

from repro.chaos.campaign import (
    CATEGORIES,
    CORRUPTION,
    DEGRADED,
    LOST_WORK,
    RECOVERED,
    SCENARIOS,
    render_campaign,
    run_campaign,
    to_canonical_json,
)

__all__ = [
    "CATEGORIES",
    "CORRUPTION",
    "DEGRADED",
    "LOST_WORK",
    "RECOVERED",
    "SCENARIOS",
    "render_campaign",
    "run_campaign",
    "to_canonical_json",
]
