"""The process-chaos campaign: seeded crash injection and classification.

Each cell of a campaign draws a deterministic seed from the fuzz
driver's splitmix64 stream (:func:`repro.fuzz.driver.iteration_seed`),
stages a scenario in a throwaway work directory, injects one
process-level failure, drives the corresponding recovery machinery, and
classifies the outcome:

====================  ========================================================
category              meaning
====================  ========================================================
``recovered``         full state restored; nothing acknowledged was lost and
                      no work had to be redone (snapshot resume, journal
                      heal, torn-tail drop of a never-acknowledged record)
``degraded``          the system converged to a correct state but redundant
                      work was required (a cache shard evicted and
                      recomputed, a journaled job re-executed, a failed
                      write retried)
``lost-work``         acknowledged work disappeared — a job the client was
                      told about no longer resolves
``corruption``        wrong bytes were served as if valid — the one category
                      the campaign gate forbids outright
====================  ========================================================

The scenarios:

* ``worker-kill`` — a worker process simulates to a seeded instruction
  boundary, saves a :class:`repro.arch.checkpoint.Snapshot`, and is
  SIGKILLed; the parent resumes from the snapshot and demands
  bit-identity with an uninterrupted run.
* ``shard-truncate`` / ``shard-bitflip`` — a
  :class:`repro.bench.cache.DiskCache` entry is torn at / flipped at a
  seeded byte; the cache must evict (checksum + schema validation) and
  recompute, never serve the damage.
* ``journal-tail-truncate`` / ``journal-bitflip`` — a serve job journal
  is damaged; the scan-and-recover fold must keep every acknowledged
  job resolvable (from the report cache or by re-enqueue).
* ``enospc`` — ``os.fsync`` raises ``ENOSPC`` mid-write (cache entry or
  snapshot save); the atomic write discipline must leave no partial
  artifact under the final name, and the retry must succeed.
* ``serve-restart`` — a live :class:`repro.serve.server.ReproServer` is
  stopped mid-burst with async jobs in flight and restarted on the same
  cache + journal; every job id must resolve with the byte-identical
  body a direct request produces.

Determinism contract: the emitted document carries no wall-clock, pid,
port, or path — the same campaign seed yields byte-identical JSON on
every rerun (``tests/test_chaos.py`` pins this).  Racy quantities (how
many jobs happened to finish before a restart) are deliberately not
serialized; only the timing-independent classification is.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import os
import random
import shutil
import signal
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.fuzz.driver import iteration_seed

# -- classification outcomes --------------------------------------------------

RECOVERED = "recovered"
DEGRADED = "degraded"
LOST_WORK = "lost-work"
CORRUPTION = "corruption"

CATEGORIES = (RECOVERED, DEGRADED, LOST_WORK, CORRUPTION)

_SEVERITY = {c: i for i, c in enumerate(CATEGORIES)}

SCENARIOS = (
    "worker-kill",
    "shard-truncate",
    "shard-bitflip",
    "journal-tail-truncate",
    "journal-bitflip",
    "enospc",
    "serve-restart",
)

#: fuzz-generator seeds are folded into this range — the band the fuzz
#: suite exercises continuously
_PROGRAM_SEED_SPAN = 100_000


def _worse(a: str, b: str) -> str:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


def _cell_key(cell_seed: int, salt: str = "") -> str:
    return hashlib.sha256(f"chaos:{cell_seed}:{salt}".encode()).hexdigest()


# -- simulation helpers -------------------------------------------------------


def sims_identical(a, b) -> bool:
    """Bit-identity over everything two runs of one program can differ
    in: every SimResult field, the energy counters, the memory image."""
    for f in dataclasses.fields(type(a)):
        if f.name in ("counters", "memory", "obs", "ooo"):
            continue
        if getattr(a, f.name) != getattr(b, f.name):
            return False
    for f in dataclasses.fields(type(a.counters)):
        if getattr(a.counters, f.name) != getattr(b.counters, f.name):
            return False
    if a.memory is not None and b.memory is not None:
        if bytes(a.memory.data) != bytes(b.memory.data):
            return False
    return True


def _fuzz_binary(program_seed: int):
    from repro.core.pipeline import CompilerConfig, compile_binary
    from repro.fuzz.generator import generate_program

    program = generate_program(program_seed)
    binary = compile_binary(
        program.source,
        CompilerConfig.bitspec("max"),
        profile_inputs=program.inputs_profile,
    )
    return program, binary


def _machine(program, binary):
    from repro.arch.machine import Machine
    from repro.core.pipeline import set_global_inputs

    if program.inputs_run:
        set_global_inputs(binary.module, program.inputs_run)
    return Machine(binary.linked, binary.module, engine="fast")


# -- worker-kill --------------------------------------------------------------


def _victim(program_seed: int, cut: int, snapshot_path: str, ready_path: str):
    """The sacrificial worker: checkpoint, save, signal readiness, hold.

    Runs in a child process; the parent SIGKILLs it once ``ready_path``
    appears, so the kill point is deterministic in *machine state* (the
    snapshot is always durable when death arrives) even though it is
    not deterministic in wall-clock.
    """
    program, binary = _fuzz_binary(program_seed)
    snapshot = _machine(program, binary).run(checkpoint_at=cut)
    snapshot.save(snapshot_path)
    Path(ready_path).write_text("ready")
    while True:  # pragma: no cover — only ever exited by SIGKILL
        time.sleep(3600)


def _scenario_worker_kill(cell_seed: int, workdir: Path) -> dict:
    import multiprocessing

    from repro.arch.checkpoint import Snapshot

    rng = random.Random(cell_seed)
    program_seed = cell_seed % _PROGRAM_SEED_SPAN
    program, binary = _fuzz_binary(program_seed)
    golden = _machine(program, binary).run()
    cut = 1 + rng.randrange(max(golden.instructions - 1, 1))

    snapshot_path = workdir / "victim.snapshot"
    ready_path = workdir / "victim.ready"
    process = multiprocessing.Process(
        target=_victim,
        args=(program_seed, cut, str(snapshot_path), str(ready_path)),
    )
    process.start()
    deadline = time.monotonic() + 120.0
    while (
        not ready_path.exists()
        and process.is_alive()
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    if not ready_path.exists():
        process.kill()
        process.join()
        raise RuntimeError("victim never reached its checkpoint")
    os.kill(process.pid, signal.SIGKILL)
    process.join()

    snapshot = Snapshot.load(str(snapshot_path))
    resumed = _machine(program, binary).run(resume_from=snapshot)
    category = RECOVERED if sims_identical(resumed, golden) else CORRUPTION
    return {
        "category": category,
        "program_seed": program_seed,
        "cut": cut,
        "golden_instructions": golden.instructions,
        "killed": True,
        "resumed_from_snapshot": True,
    }


# -- cache-shard damage -------------------------------------------------------


def _scenario_shard_damage(cell_seed: int, workdir: Path, *, mode: str) -> dict:
    from repro.bench.cache import DiskCache

    rng = random.Random(cell_seed)
    cache = DiskCache(workdir / "cache")
    key = _cell_key(cell_seed)
    payload = {
        "value": rng.randrange(1 << 32),
        "items": [rng.randrange(100) for _ in range(8)],
    }
    cache.put(key, payload)
    path = cache._path(key)
    raw = bytearray(path.read_bytes())
    if mode == "truncate":
        cutoff = 1 + rng.randrange(len(raw) - 1)
        path.write_bytes(bytes(raw[:cutoff]))
        damage = {"damage": "truncate", "offset": cutoff}
    else:
        position = rng.randrange(len(raw))
        raw[position] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(raw))
        damage = {"damage": "bitflip", "offset": position}

    first = cache.get(key)
    if first is not None and first != payload:
        category = CORRUPTION  # damage served as a valid entry
    elif first == payload:
        category = RECOVERED  # the damage did not reach the payload
    else:
        # evicted: redo the work, then the entry must round-trip again
        cache.put(key, payload)
        category = DEGRADED if cache.get(key) == payload else LOST_WORK
    record = {"category": category, "evicted": first is None}
    record.update(damage)
    return record


# -- journal damage -----------------------------------------------------------

#: per-job lifecycle the staged journal encodes, in append order:
#: (reached-start, reached-complete, cacheable)
_JOURNAL_JOBS = (
    (False, False, True),   # acknowledged, never started
    (True, False, True),    # in flight at the crash
    (True, True, True),     # done, body in the report cache
    (True, True, False),    # done, uncacheable: envelope inline
)


def _stage_journal(cell_seed: int, workdir: Path):
    from repro.bench.cache import DiskCache
    from repro.serve.journal import JobJournal

    cache = DiskCache(workdir / "servecache")
    journal_path = workdir / "jobs.journal"
    journal = JobJournal(journal_path)
    keys = []
    for i, (started, completed, cacheable) in enumerate(_JOURNAL_JOBS):
        key = _cell_key(cell_seed, f"job{i}")
        keys.append(key)
        envelope = {
            "status": 200 if cacheable else 504,
            "kind": "report" if cacheable else "error",
            "body": {"key": key, "job": i},
            "cacheable": cacheable,
        }
        journal.submit(key, f"tenant-{i}", {"job": i})
        if started:
            journal.start(key)
        if completed:
            if cacheable:
                cache.put(key, envelope)
            journal.complete(
                key, cacheable=cacheable, envelope=envelope
            )
    journal.close()
    return journal_path, cache, keys


def _job_resolution(key: str, job: Optional[dict], cache) -> str:
    """How the server's recovery scan would leave this job."""
    if job is None:
        return "lost"
    if job["state"] == "done":
        if job["envelope"] is not None or cache.contains(key):
            return "resolves"
        return "lost"
    if cache.contains(key):
        return "resolves"  # the heal path: answer survived in the cache
    if job["request"] is not None:
        return "requeued"
    return "lost"


def _classify_journal(pristine, damaged, cache, *, tail: bool) -> str:
    """Worst-over-jobs classification of a damaged journal.

    ``tail`` marks tail truncation: a torn final record was never fully
    appended, so the action it recorded was never acknowledged to any
    client — losing it is a clean recovery, not lost work.
    """
    worst = RECOVERED
    for key, before_job in pristine.jobs.items():
        before = _job_resolution(key, before_job, cache)
        after = _job_resolution(key, damaged.jobs.get(key), cache)
        if after == "resolves":
            category = RECOVERED
        elif after == "requeued":
            category = RECOVERED if before == "requeued" else DEGRADED
        else:
            category = RECOVERED if tail else LOST_WORK
        worst = _worse(worst, category)
    return worst


def _scenario_journal_damage(
    cell_seed: int, workdir: Path, *, mode: str
) -> dict:
    from repro.serve.journal import scan

    rng = random.Random(cell_seed)
    journal_path, cache, _keys = _stage_journal(cell_seed, workdir)
    pristine = scan(journal_path)
    raw = bytearray(journal_path.read_bytes())
    if mode == "tail":
        last_line_start = bytes(raw[:-1]).rfind(b"\n") + 1
        tail_span = len(raw) - last_line_start
        chopped = 1 + rng.randrange(tail_span)
        journal_path.write_bytes(bytes(raw[: len(raw) - chopped]))
        damage = {"damage": "tail-truncate", "chopped": chopped}
    else:
        position = rng.randrange(len(raw) - 1)  # never the final newline
        if raw[position] == 0x0A:
            position += 1  # keep the line structure: flip content bytes
        raw[position] ^= 1 << rng.randrange(8)
        journal_path.write_bytes(bytes(raw))
        damage = {"damage": "bitflip", "offset": position}

    damaged = scan(journal_path)
    category = _classify_journal(
        pristine, damaged, cache, tail=(mode == "tail")
    )
    record = {
        "category": category,
        "records_before": pristine.records,
        "records_after": damaged.records,
        "dropped": damaged.dropped,
        "torn_tail": damaged.torn_tail,
    }
    record.update(damage)
    return record


# -- disk-full ----------------------------------------------------------------


def _fsync_enospc(_fd):
    raise OSError(errno.ENOSPC, "No space left on device")


def _scenario_enospc(cell_seed: int, workdir: Path) -> dict:
    from repro.bench.cache import DiskCache

    rng = random.Random(cell_seed)
    target = ("cache", "snapshot")[rng.randrange(2)]
    real_fsync = os.fsync

    if target == "cache":
        cache = DiskCache(workdir / "cache")
        key = _cell_key(cell_seed)
        payload = {"value": rng.randrange(1 << 32)}
        os.fsync = _fsync_enospc
        try:
            failed = False
            try:
                cache.put(key, payload)
            except OSError:
                failed = True
        finally:
            os.fsync = real_fsync
        first = cache.get(key)
        if first is not None and first != payload:
            category = CORRUPTION  # a torn write got published
        else:
            cache.put(key, payload)  # the retry, disk space back
            category = (
                DEGRADED if cache.get(key) == payload else LOST_WORK
            )
        return {
            "category": category,
            "target": target,
            "write_failed": failed,
            "published_while_full": first is not None,
        }

    # snapshot target: an interrupted Snapshot.save must leave nothing
    from repro.arch.checkpoint import Snapshot, SnapshotError

    program_seed = cell_seed % _PROGRAM_SEED_SPAN
    program, binary = _fuzz_binary(program_seed)
    golden = _machine(program, binary).run()
    cut = 1 + rng.randrange(max(golden.instructions - 1, 1))
    snapshot = _machine(program, binary).run(checkpoint_at=cut)
    path = workdir / "run.snapshot"
    os.fsync = _fsync_enospc
    try:
        failed = False
        try:
            snapshot.save(str(path))
        except OSError:
            failed = True
    finally:
        os.fsync = real_fsync
    published = path.exists()
    if published:
        try:
            Snapshot.load(str(path))
            category = CORRUPTION  # a partial save parsed as a snapshot
        except SnapshotError:
            category = DEGRADED
    else:
        snapshot.save(str(path))  # the retry
        resumed = _machine(program, binary).run(
            resume_from=Snapshot.load(str(path))
        )
        category = (
            DEGRADED if sims_identical(resumed, golden) else CORRUPTION
        )
    return {
        "category": category,
        "target": target,
        "program_seed": program_seed,
        "cut": cut,
        "write_failed": failed,
        "published_while_full": published,
    }


# -- serve restart ------------------------------------------------------------


def _scenario_serve_restart(cell_seed: int, workdir: Path) -> dict:
    import asyncio

    from repro.fuzz.generator import generate_program
    from repro.serve.client import http_request, submit_report
    from repro.serve.server import ReproServer, ServeConfig

    base_seed = cell_seed % _PROGRAM_SEED_SPAN
    docs = []
    for i in range(3):
        program = generate_program(base_seed + i)
        docs.append(
            {
                "tenant": "chaos",
                "source": program.source,
                "config": {"preset": "bitspec-max"},
                "inputs": {
                    "profile": program.inputs_profile,
                    "run": program.inputs_run,
                },
                "report": {"attribution": True, "pareto": False},
            }
        )
    config = ServeConfig(
        port=0,
        workers=0,
        cache_dir=str(workdir / "servecache"),
        journal_path=str(workdir / "jobs.journal"),
        quota_capacity=0.0,
        max_queue=16,
    )

    async def drive():
        server = ReproServer(config)
        await server.start()
        job_ids = []
        for doc in docs:
            response = await http_request(
                "127.0.0.1", server.port, "POST", "/v1/jobs", doc
            )
            if response.status == 202:
                job_ids.append(response.json()["job_id"])
        await server.stop()  # mid-burst: jobs at best still executing

        server = ReproServer(config)
        await server.start()
        try:
            lost, bodies = 0, {}
            deadline = time.monotonic() + 120.0
            for job_id in job_ids:
                body = None
                while time.monotonic() < deadline:
                    response = await http_request(
                        "127.0.0.1",
                        server.port,
                        "GET",
                        f"/v1/jobs/{job_id}/report",
                    )
                    if response.status == 200:
                        body = response.body
                        break
                    if response.status == 404:
                        break
                    await asyncio.sleep(0.02)
                if body is None:
                    lost += 1
                else:
                    bodies[job_id] = body
            mismatches = 0
            for doc, job_id in zip(docs, job_ids):
                if job_id not in bodies:
                    continue
                direct = await submit_report(
                    "127.0.0.1", server.port, doc
                )
                if direct.body != bodies[job_id]:
                    mismatches += 1
            return len(job_ids), lost, mismatches
        finally:
            await server.stop()

    submitted, lost, mismatches = asyncio.run(drive())
    if mismatches or submitted < len(docs):
        category = CORRUPTION if mismatches else LOST_WORK
    elif lost:
        category = LOST_WORK
    else:
        category = RECOVERED
    return {
        "category": category,
        "jobs": len(docs),
        "lost": lost,
        "byte_mismatches": mismatches,
    }


# -- the campaign -------------------------------------------------------------

_RUNNERS = {
    "worker-kill": _scenario_worker_kill,
    "shard-truncate": lambda seed, wd: _scenario_shard_damage(
        seed, wd, mode="truncate"
    ),
    "shard-bitflip": lambda seed, wd: _scenario_shard_damage(
        seed, wd, mode="bitflip"
    ),
    "journal-tail-truncate": lambda seed, wd: _scenario_journal_damage(
        seed, wd, mode="tail"
    ),
    "journal-bitflip": lambda seed, wd: _scenario_journal_damage(
        seed, wd, mode="bitflip"
    ),
    "enospc": _scenario_enospc,
    "serve-restart": _scenario_serve_restart,
}


def enumerate_cells(
    scenarios: Sequence[str], seed: int, per_scenario: int
) -> list:
    """The campaign grid, with deterministic per-cell seeds."""
    cells = []
    for scenario in scenarios:
        for _ in range(per_scenario):
            cells.append((scenario, iteration_seed(seed, len(cells))))
    return cells


def run_cell(scenario: str, cell_seed: int, workdir=None) -> dict:
    """Stage, injure, recover, classify one cell."""
    base = {"scenario": scenario, "cell_seed": cell_seed}
    owned = workdir is None
    if owned:
        workdir = tempfile.mkdtemp(prefix="chaos-")
    try:
        record = _RUNNERS[scenario](cell_seed, Path(workdir))
        record.update(base)
        record["status"] = "ok"
        return record
    except Exception as exc:
        base.update(
            {
                "status": "error",
                "category": "error",
                "error": f"{type(exc).__name__}: {exc}",
            }
        )
        return base
    finally:
        if owned:
            shutil.rmtree(workdir, ignore_errors=True)


def summarize(cells: list) -> dict:
    per_scenario: dict = {}
    counts = {category: 0 for category in CATEGORIES}
    for cell in cells:
        category = cell.get("category", "error")
        histogram = per_scenario.setdefault(cell["scenario"], {})
        histogram[category] = histogram.get(category, 0) + 1
        if category in counts:
            counts[category] += 1
    return {
        "per_scenario": per_scenario,
        "cells": len(cells),
        "errors": sum(1 for c in cells if c.get("status") != "ok"),
        "corruptions": counts[CORRUPTION],
        "lost_work": counts[LOST_WORK],
    }


def run_campaign(
    *,
    scenarios: Sequence[str] = SCENARIOS,
    seed: int = 0,
    per_scenario: int = 2,
    progress=None,
) -> dict:
    """Run the grid; returns the campaign document (canonical-JSON-able)."""
    tasks = enumerate_cells(scenarios, seed, per_scenario)
    cells = []
    for done, (scenario, cell_seed) in enumerate(tasks, start=1):
        record = run_cell(scenario, cell_seed)
        cells.append(record)
        if progress is not None:
            progress(done, len(tasks), record)
    return {
        "seed": seed,
        "per_scenario": per_scenario,
        "scenarios": list(scenarios),
        "cells": cells,
        "summary": summarize(cells),
    }


# -- rendering ----------------------------------------------------------------


def to_canonical_json(campaign: dict) -> str:
    """Byte-stable serialization: sorted keys, no wall-clock anywhere."""
    return json.dumps(campaign, sort_keys=True, indent=2) + "\n"


def render_campaign(campaign: dict) -> str:
    """Human-readable classification table for the CLI."""
    summary = campaign["summary"]
    width = max((len(s) for s in campaign["scenarios"]), default=10)
    lines = [
        f"process-chaos campaign — seed {campaign['seed']}, "
        f"{summary['cells']} cells"
    ]
    header = (
        f"{'scenario':<{width}}  {'recovered':>9}  {'degraded':>8}  "
        f"{'lost':>5}  {'corrupt':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for scenario in campaign["scenarios"]:
        histogram = summary["per_scenario"].get(scenario, {})
        lines.append(
            f"{scenario:<{width}}  "
            f"{histogram.get(RECOVERED, 0):>9}  "
            f"{histogram.get(DEGRADED, 0):>8}  "
            f"{histogram.get(LOST_WORK, 0):>5}  "
            f"{histogram.get(CORRUPTION, 0):>7}"
        )
    if summary["errors"]:
        lines.append(f"errors: {summary['errors']}")
    lines.append(f"corruptions: {summary['corruptions']}")
    return "\n".join(lines)
