"""CLI for process-chaos campaigns: ``python -m repro.chaos``.

Runs a seeded campaign of process-level failure injections — worker
SIGKILLs, cache-shard and journal damage, simulated disk-full writes, a
mid-burst serve restart — classifies every cell as ``recovered`` /
``degraded`` / ``lost-work`` / ``corruption``, prints the table,
optionally writes the canonical JSON artifact (``--json``), and exits
non-zero on any ``corruption`` or errored cell — the CI contract
(``CHAOS_recovery.json`` is the committed reference artifact).

Environment: ``REPRO_CHAOS_SEED`` and ``REPRO_CHAOS_PER_SCENARIO``
override the CLI defaults (flags still win) so CI matrices can vary the
campaign without editing the workflow command line.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.chaos.campaign import (
    SCENARIOS,
    render_campaign,
    run_campaign,
    to_canonical_json,
)


def _scenarios(text: str) -> list:
    if text == "all":
        return list(SCENARIOS)
    chosen = [item.strip() for item in text.split(",") if item.strip()]
    unknown = [s for s in chosen if s not in SCENARIOS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown scenarios: {', '.join(unknown)} "
            f"(choose from {', '.join(SCENARIOS)})"
        )
    return chosen


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="deterministic process-chaos campaigns",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    campaign = subs.add_parser(
        "campaign", help="inject process-level failures and classify recovery"
    )
    campaign.add_argument(
        "--seed",
        type=int,
        default=int(os.environ.get("REPRO_CHAOS_SEED", "0")),
        help="campaign seed (env: REPRO_CHAOS_SEED)",
    )
    campaign.add_argument(
        "--per-scenario",
        type=int,
        default=int(os.environ.get("REPRO_CHAOS_PER_SCENARIO", "2")),
        help="cells per scenario (env: REPRO_CHAOS_PER_SCENARIO)",
    )
    campaign.add_argument(
        "--scenarios",
        type=_scenarios,
        default=list(SCENARIOS),
        help="comma-separated scenario names, or 'all'",
    )
    campaign.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the canonical campaign JSON here",
    )

    args = parser.parse_args(argv)

    def progress(done, total, record):
        print(
            f"[{done}/{total}] {record['scenario']}: "
            f"{record.get('category', '?')}",
            file=sys.stderr,
        )

    campaign_doc = run_campaign(
        scenarios=args.scenarios,
        seed=args.seed,
        per_scenario=args.per_scenario,
        progress=progress,
    )

    print(render_campaign(campaign_doc))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(to_canonical_json(campaign_doc))
        print(f"campaign written to {args.json}", file=sys.stderr)

    summary = campaign_doc["summary"]
    if summary["corruptions"]:
        print(
            f"FAIL: {summary['corruptions']} corruption(s) — damage was "
            "served as valid state",
            file=sys.stderr,
        )
        return 1
    if summary["errors"]:
        print(
            f"FAIL: {summary['errors']} campaign cell(s) errored",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
