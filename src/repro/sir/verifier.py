"""SIR verifier: the structural invariants of §3.1 and Theorems 3.1/3.2.

Checks, on top of the base IR verifier:

* handlers are not branch targets and lie outside every region;
* each handler handles exactly one region and every region with speculative
  instructions has a handler;
* speculative instructions only appear inside regions, in idempotent blocks;
* Theorem 3.1: values defined inside a region are not used by its handler;
* handlers branch only into ``CFG_orig`` (Eq. 7).
"""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction
from repro.ir.verifier import VerificationError, verify_function
from repro.sir.regions import regions_of


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise VerificationError(message)


def verify_sir_function(func: Function, module: Module = None) -> None:
    verify_function(func, module)

    branch_targets = {
        id(succ) for block in func.blocks for succ in block.successors()
    }
    regions = regions_of(func)
    handlers = [b for b in func.blocks if b.handler_for is not None]

    for handler in handlers:
        _check(
            id(handler) not in branch_targets,
            f"{func.name}: handler {handler.name} is a branch target",
        )
        _check(
            handler.region is None,
            f"{func.name}: handler {handler.name} inside a region",
        )

    handled = {id(r.handler) for r in regions if r.handler is not None}
    _check(
        len(handled) == len([r for r in regions if r.handler is not None]),
        f"{func.name}: a block handles more than one region",
    )

    for block in func.blocks:
        spec_insts = [i for i in block.instructions if i.speculative]
        if spec_insts:
            _check(
                block.region is not None,
                f"{func.name}: speculative instruction in {block.name} "
                "outside any region",
            )
            _check(
                block.is_idempotent(),
                f"{func.name}: speculative region block {block.name} "
                "is not idempotent",
            )
            _check(
                block.region.handler is not None,
                f"{func.name}: region of {block.name} has no handler",
            )

    for region in regions:
        if region.handler is None:
            continue
        region_defs: set[Instruction] = set()
        for block in region.blocks:
            for inst in block.instructions:
                if inst.has_result:
                    region_defs.add(inst)
        # Theorem 3.1: region-defined values are dead at the handler.
        for inst in region.handler.instructions:
            for op in inst.operands:
                _check(
                    op not in region_defs,
                    f"{func.name}: handler {region.handler.name} uses "
                    f"%{getattr(op, 'name', '?')} defined inside its region",
                )
        # Eq. 7: handler successors lie in CFG_orig.
        for succ in region.handler.successors():
            _check(
                succ.world != "spec",
                f"{func.name}: handler {region.handler.name} branches into "
                f"CFG_spec block {succ.name}",
            )


def verify_sir_module(module: Module) -> None:
    for func in module.functions.values():
        verify_sir_function(func, module)
