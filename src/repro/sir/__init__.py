"""Speculative IR (SIR): speculative regions + handlers on top of the IR."""

from repro.sir.regions import (
    SpeculativeRegion,
    regions_of,
    sir_predecessors,
    smir_predecessors,
)
from repro.sir.verifier import verify_sir_function, verify_sir_module

__all__ = [
    "SpeculativeRegion",
    "regions_of",
    "sir_predecessors",
    "smir_predecessors",
    "verify_sir_function",
    "verify_sir_module",
]
