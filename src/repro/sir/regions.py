"""Speculative regions — the SIR extension of §3.1.

A :class:`SpeculativeRegion` is a single-entry single-exit sequence of basic
blocks with exactly one *handler* block that control enters iff an
instruction in the region misspeculates.  Handlers are never branch targets;
their predecessors are defined by Eq. 1 (SIR) / Eq. 2 (SMIR) of the paper.

In this implementation the squeezer creates one region per speculative basic
block (the block is trivially SESE), matching Figure 6 of the paper where
``B.nonphis`` forms the region.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function


class SpeculativeRegion:
    """A SESE block sequence monitored for misspeculation."""

    _counter = 0

    def __init__(self, blocks: list[BasicBlock]) -> None:
        if not blocks:
            raise ValueError("speculative region needs at least one block")
        SpeculativeRegion._counter += 1
        self.id = SpeculativeRegion._counter
        self.blocks = list(blocks)
        self.handler: Optional[BasicBlock] = None
        for block in self.blocks:
            if block.region is not None:
                raise ValueError(
                    f"block {block.name} already in region {block.region.id}"
                )
            block.region = self

    @property
    def entry(self) -> BasicBlock:
        """Entry : SR -> BB (first block of the sequence)."""
        return self.blocks[0]

    def set_handler(self, handler: BasicBlock) -> None:
        """Register ``handler`` as this region's misspeculation handler.

        A basic block can be the handler of a single region, and a handler
        cannot itself be inside a region (§3.1.1).
        """
        if handler.handler_for is not None:
            raise ValueError(f"{handler.name} already handles a region")
        if handler.region is not None:
            raise ValueError(f"handler {handler.name} lies inside a region")
        self.handler = handler
        handler.handler_for = self

    def add_block(self, block: BasicBlock) -> None:
        if block.region is not None:
            raise ValueError(f"block {block.name} already in a region")
        block.region = self
        self.blocks.append(block)

    def __repr__(self) -> str:
        handler = self.handler.name if self.handler else "?"
        return (
            f"<SR#{self.id} entry={self.entry.name} "
            f"blocks={len(self.blocks)} handler={handler}>"
        )


def regions_of(func: Function) -> list[SpeculativeRegion]:
    """All distinct speculative regions in ``func``, in block order."""
    seen: set[int] = set()
    out: list[SpeculativeRegion] = []
    for block in func.blocks:
        region = block.region
        if region is not None and region.id not in seen:
            seen.add(region.id)
            out.append(region)
    return out


def sir_predecessors(block: BasicBlock) -> list[BasicBlock]:
    """Predecessors under the SIR rule (Eq. 1).

    For a handler: ``Preds(Handler(SR)) = Preds(Entry(SR))``.  For ordinary
    blocks, plain branch predecessors.
    """
    if block.handler_for is not None:
        return block.handler_for.entry.predecessors()
    return block.predecessors()


def smir_predecessors(block: BasicBlock) -> list[BasicBlock]:
    """Predecessors under the SMIR rule (Eq. 2).

    For a handler: every block of the region it handles (control can leave
    each of them on misspeculation).
    """
    if block.handler_for is not None:
        return list(block.handler_for.blocks)
    return block.predecessors()
