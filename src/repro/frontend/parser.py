"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import Optional

from repro.frontend.ast_nodes import (
    AddrOfExpr,
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CondExpr,
    ContinueStmt,
    CType,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    OutStmt,
    Param,
    Program,
    ReturnStmt,
    Stmt,
    TYPE_BY_NAME,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)
from repro.frontend.lexer import Token, tokenize


class ParseError(Exception):
    """Syntax error in MiniC source."""


#: binary operator precedence (higher binds tighter)
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise ParseError(
                f"line {self.current.line}: expected {kind!r}, "
                f"got {self.current.text!r}"
            )
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.current.kind == kind:
            return self.advance()
        return None

    def at_type(self) -> bool:
        return self.current.kind == "kw" and self.current.text in TYPE_BY_NAME

    def parse_type(self) -> CType:
        token = self.advance()
        base = TYPE_BY_NAME.get(token.text)
        if base is None:
            raise ParseError(f"line {token.line}: expected type, got {token.text!r}")
        if self.accept("*"):
            return CType(base.bits, base.signed, pointer=True)
        return base

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.current.kind != "eof":
            if self.current.kind == "kw" and self.current.text == "void":
                program.functions.append(self.parse_function(None))
                continue
            if not self.at_type():
                raise ParseError(
                    f"line {self.current.line}: expected declaration, "
                    f"got {self.current.text!r}"
                )
            # Distinguish `T name(...)` (function) from `T name...;` (global).
            if self.peek(2).kind == "(":
                ctype = self.parse_type()
                program.functions.append(self.parse_function(ctype))
            else:
                program.globals.append(self.parse_global())
        return program

    def parse_global(self) -> GlobalDecl:
        ctype = self.parse_type()
        if ctype.pointer:
            raise ParseError("globals cannot have pointer type")
        name = self.expect("ident").text
        size = 1
        if self.accept("["):
            size = self.expect("num").value
            self.expect("]")
        init: list[int] = []
        if self.accept("="):
            if self.accept("{"):
                while not self.accept("}"):
                    init.append(self._parse_const_int())
                    if self.current.kind != "}":
                        self.expect(",")
            else:
                init.append(self._parse_const_int())
        self.expect(";")
        return GlobalDecl(ctype, name, size, init)

    def _parse_const_int(self) -> int:
        negative = bool(self.accept("-"))
        token = self.expect("num")
        return -token.value if negative else token.value

    def parse_function(self, ret_type: Optional[CType]) -> FuncDecl:
        if ret_type is None:
            self.advance()  # consume 'void'
        name = self.expect("ident").text
        self.expect("(")
        params: list[Param] = []
        if self.current.kind != ")":
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").text
                params.append(Param(ptype, pname))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return FuncDecl(ret_type, name, params, body)

    # -- statements ------------------------------------------------------------

    def parse_block(self) -> list[Stmt]:
        self.expect("{")
        stmts: list[Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_statement())
        return stmts

    def parse_statement(self) -> Stmt:
        tok = self.current
        if tok.kind == "{":
            # Anonymous block: flatten into an if(1) for scoping simplicity.
            return IfStmt(NumExpr(1), self.parse_block(), [])
        if tok.kind == "kw":
            if tok.text in TYPE_BY_NAME:
                return self.parse_decl()
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "do":
                return self.parse_do_while()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "return":
                self.advance()
                value = None
                if self.current.kind != ";":
                    value = self.parse_expr()
                self.expect(";")
                return ReturnStmt(value)
            if tok.text == "break":
                self.advance()
                self.expect(";")
                return BreakStmt()
            if tok.text == "continue":
                self.advance()
                self.expect(";")
                return ContinueStmt()
            if tok.text == "out":
                self.advance()
                self.expect("(")
                value = self.parse_expr()
                self.expect(")")
                self.expect(";")
                return OutStmt(value)
        return self.parse_simple_statement(expect_semi=True)

    def parse_decl(self) -> DeclStmt:
        ctype = self.parse_type()
        name = self.expect("ident").text
        array_size = None
        if self.accept("["):
            array_size = self.expect("num").value
            self.expect("]")
        init = None
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return DeclStmt(ctype, name, array_size, init)

    def parse_simple_statement(self, *, expect_semi: bool) -> Stmt:
        """Assignment, or a bare call expression."""
        expr = self.parse_expr()
        if self.current.kind in ASSIGN_OPS:
            if not isinstance(expr, (VarExpr, IndexExpr)):
                raise ParseError(
                    f"line {self.current.line}: assignment target must be a "
                    "variable or array element"
                )
            op = self.advance().kind
            value = self.parse_expr()
            stmt: Stmt = AssignStmt(expr, op, value)
        else:
            stmt = ExprStmt(expr)
        if expect_semi:
            self.expect(";")
        return stmt

    def parse_if(self) -> IfStmt:
        self.advance()
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self._statement_or_block()
        else_body: list[Stmt] = []
        if self.current.kind == "kw" and self.current.text == "else":
            self.advance()
            else_body = self._statement_or_block()
        return IfStmt(cond, then_body, else_body)

    def _statement_or_block(self) -> list[Stmt]:
        if self.current.kind == "{":
            return self.parse_block()
        return [self.parse_statement()]

    def parse_while(self) -> WhileStmt:
        self.advance()
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return WhileStmt(cond, self._statement_or_block())

    def parse_do_while(self) -> DoWhileStmt:
        self.advance()
        body = self._statement_or_block()
        if not (self.current.kind == "kw" and self.current.text == "while"):
            raise ParseError(f"line {self.current.line}: expected 'while'")
        self.advance()
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return DoWhileStmt(body, cond)

    def parse_for(self) -> ForStmt:
        self.advance()
        self.expect("(")
        init = None
        if self.current.kind != ";":
            if self.at_type():
                init = self.parse_decl()  # consumes the ';'
            else:
                init = self.parse_simple_statement(expect_semi=True)
        else:
            self.expect(";")
        cond = None
        if self.current.kind != ";":
            cond = self.parse_expr()
        self.expect(";")
        step = None
        if self.current.kind != ")":
            step = self.parse_simple_statement(expect_semi=False)
        self.expect(")")
        return ForStmt(init, cond, step, self._statement_or_block())

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            if_true = self.parse_expr()
            self.expect(":")
            if_false = self.parse_ternary()
            return CondExpr(cond, if_true, if_false)
        return cond

    def parse_binary(self, min_prec: int) -> Expr:
        lhs = self.parse_unary()
        while True:
            op = self.current.kind
            prec = PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = BinaryExpr(op, lhs, rhs)

    def parse_unary(self) -> Expr:
        tok = self.current
        if tok.kind in ("-", "!", "~"):
            self.advance()
            return UnaryExpr(tok.kind, self.parse_unary())
        if tok.kind == "&":
            self.advance()
            base = self.expect("ident").text
            self.expect("[")
            index = self.parse_expr()
            self.expect("]")
            return AddrOfExpr(base, index)
        if tok.kind == "(" and self.peek().kind == "kw" and self.peek().text in TYPE_BY_NAME:
            self.advance()
            ctype = self.parse_type()
            self.expect(")")
            return CastExpr(ctype, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        tok = self.current
        if tok.kind == "num":
            self.advance()
            return NumExpr(tok.value)
        if tok.kind == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.kind == "ident":
            name = self.advance().text
            if self.accept("("):
                args: list[Expr] = []
                if self.current.kind != ")":
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                return CallExpr(name, args)
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return IndexExpr(name, index)
            return VarExpr(name)
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse(source: str) -> Program:
    """Parse MiniC source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()
