"""MiniC abstract syntax tree.

Types are represented as :class:`CType` — a sized integer with signedness,
optionally a pointer (one level, for array parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class CType:
    """A MiniC type: ``bits`` wide, ``signed`` or not, maybe a pointer."""

    bits: int
    signed: bool = False
    pointer: bool = False

    def __repr__(self) -> str:
        base = f"{'s' if self.signed else 'u'}{self.bits}"
        return base + ("*" if self.pointer else "")


U8 = CType(8)
U16 = CType(16)
U32 = CType(32)
U64 = CType(64)
S8 = CType(8, signed=True)
S16 = CType(16, signed=True)
S32 = CType(32, signed=True)
S64 = CType(64, signed=True)

TYPE_BY_NAME = {
    "u8": U8,
    "u16": U16,
    "u32": U32,
    "u64": U64,
    "s8": S8,
    "s16": S16,
    "s32": S32,
    "s64": S64,
}


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    pass


@dataclass
class NumExpr(Expr):
    value: int
    #: literal type when explicitly suffixed; inferred from context otherwise
    ctype: Optional[CType] = None


@dataclass
class VarExpr(Expr):
    name: str


@dataclass
class IndexExpr(Expr):
    base: str
    index: Expr


@dataclass
class AddrOfExpr(Expr):
    """``&a[i]`` — address of an array element (for subarray passing)."""

    base: str
    index: Expr


@dataclass
class UnaryExpr(Expr):
    op: str  # '-', '!', '~'
    operand: Expr


@dataclass
class BinaryExpr(Expr):
    op: str  # arithmetic/logical/relational operator token
    lhs: Expr
    rhs: Expr


@dataclass
class CastExpr(Expr):
    ctype: CType
    operand: Expr


@dataclass
class CallExpr(Expr):
    callee: str
    args: list = field(default_factory=list)


@dataclass
class CondExpr(Expr):
    """Ternary ``c ? a : b``."""

    cond: Expr
    if_true: Expr
    if_false: Expr


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    pass


@dataclass
class DeclStmt(Stmt):
    ctype: CType
    name: str
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    target: Union[VarExpr, IndexExpr]
    op: str  # '=', '+=', ...
    value: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: list = field(default_factory=list)
    else_body: list = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: list = field(default_factory=list)


@dataclass
class DoWhileStmt(Stmt):
    body: list = field(default_factory=list)
    cond: Expr = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: list = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class OutStmt(Stmt):
    """``out(e);`` — volatile output intrinsic (models I/O)."""

    value: Expr


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class GlobalDecl:
    ctype: CType
    name: str
    array_size: int = 1
    init: list = field(default_factory=list)


@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class FuncDecl:
    ret_type: Optional[CType]  # None == void
    name: str
    params: list = field(default_factory=list)
    body: list = field(default_factory=list)


@dataclass
class Program:
    globals: list = field(default_factory=list)
    functions: list = field(default_factory=list)
