"""MiniC front-end: C-subset source → repro IR (the clang stage of Fig. 4)."""

from repro.frontend.ast_nodes import CType, Program
from repro.frontend.codegen import (
    CodegenError,
    compile_program,
    compile_source,
    remove_trivial_phis,
)
from repro.frontend.lexer import LexError, tokenize
from repro.frontend.parser import ParseError, parse
from repro.frontend.printer import print_expr, print_program, print_stmt

__all__ = [
    "CType",
    "CodegenError",
    "LexError",
    "ParseError",
    "Program",
    "compile_program",
    "compile_source",
    "parse",
    "print_expr",
    "print_program",
    "print_stmt",
    "remove_trivial_phis",
    "tokenize",
]
