"""MiniC front-end: C-subset source → repro IR (the clang stage of Fig. 4)."""

from repro.frontend.ast_nodes import CType, Program
from repro.frontend.codegen import (
    CodegenError,
    compile_program,
    compile_source,
    remove_trivial_phis,
)
from repro.frontend.lexer import LexError, tokenize
from repro.frontend.parser import ParseError, parse

__all__ = [
    "CType",
    "CodegenError",
    "LexError",
    "ParseError",
    "Program",
    "compile_program",
    "compile_source",
    "parse",
    "remove_trivial_phis",
    "tokenize",
]
