"""MiniC lexer.

MiniC is the C subset the workloads are written in: sized integer types,
global/local arrays, functions, loops.  The lexer produces a flat token list
with line/column info for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    {
        "u8",
        "u16",
        "u32",
        "u64",
        "s8",
        "s16",
        "s32",
        "s64",
        "void",
        "if",
        "else",
        "while",
        "do",
        "for",
        "return",
        "break",
        "continue",
        "out",
    }
)

#: Multi-character operators, longest first so maximal munch works.
MULTI_OPS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
)

SINGLE_OPS = "+-*/%&|^~!<>=(){}[];,?:"


@dataclass
class Token:
    kind: str  # 'ident' | 'num' | 'kw' | operator/punct literal
    text: str
    value: int = 0
    line: int = 0
    col: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


class LexError(Exception):
    """Invalid character or malformed literal in MiniC source."""


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> LexError:
        return LexError(f"line {line}:{col}: {message}")

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        start_col = col
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line=line, col=start_col))
            col += j - i
            i = j
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("num", source[i:j], value, line, start_col))
            col += j - i
            i = j
            continue
        if ch == "'":
            if i + 2 < n and source[i + 2] == "'":
                value = ord(source[i + 1])
                tokens.append(Token("num", source[i : i + 3], value, line, start_col))
                i += 3
                col += 3
                continue
            if source.startswith("'\\", i) and i + 3 < n and source[i + 3] == "'":
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                esc = source[i + 2]
                if esc not in escapes:
                    raise error(f"unknown escape '\\{esc}'")
                tokens.append(
                    Token("num", source[i : i + 4], escapes[esc], line, start_col)
                )
                i += 4
                col += 4
                continue
            raise error("malformed character literal")
        matched = False
        for op in MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line=line, col=start_col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_OPS:
            tokens.append(Token(ch, ch, line=line, col=start_col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line=line, col=col))
    return tokens
