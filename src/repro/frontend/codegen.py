"""MiniC → IR code generation with direct SSA construction.

Scalars are kept in SSA form throughout using the structured-control-flow
construction: variable maps are snapshotted at control splits and merged with
phis at joins; loops pre-insert phis for every visible scalar and trivial
phis are cleaned up afterwards.  Local arrays become entry-block allocas;
globals live in flat memory.

This is the "clang front-end" stage of the BITSPEC pipeline (Fig. 4): it
deliberately emits *programmer-declared* bitwidths — a `u64` stays 64-bit —
leaving the gap between declared and required bits for the profiler and
squeezer to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend.ast_nodes import (
    AddrOfExpr,
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CondExpr,
    ContinueStmt,
    CType,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    OutStmt,
    Program,
    ReturnStmt,
    Stmt,
    U32,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)
from repro.ir import (
    Alloca,
    BasicBlock,
    Constant,
    Function,
    GlobalVariable,
    IRBuilder,
    Module,
    Phi,
    PointerType,
    VOID,
    int_type,
)
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.values import Value

BOOL = CType(1)


class CodegenError(Exception):
    """Semantic error in MiniC source."""


@dataclass
class Slot:
    """Binding of a source name."""

    kind: str  # 'ssa' | 'array' | 'ptr'
    ctype: CType
    base: Optional[Value] = None  # array base / pointer argument


@dataclass
class Signature:
    ret: Optional[CType]
    params: list


ARITH_OP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
}

CMP_OP = {"==": "eq", "!=": "ne"}
CMP_UNSIGNED = {"<": "ult", "<=": "ule", ">": "ugt", ">=": "uge"}
CMP_SIGNED = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}


def _ir_type(ctype: CType):
    return int_type(ctype.bits)


class FunctionCodegen:
    """Generates IR for one function."""

    def __init__(
        self,
        module: Module,
        signatures: dict,
        decl: FuncDecl,
        func: Function,
    ) -> None:
        self.module = module
        self.signatures = signatures
        self.decl = decl
        self.func = func
        self.builder = IRBuilder()
        self.slots: list[dict[str, Slot]] = [{}]
        self.values: dict[str, Value] = {}
        self.loop_stack: list[dict] = []  # {'breaks': [...], 'continues': [...],
        #                                   'continue_target': ...}
        self.entry_block: Optional[BasicBlock] = None
        self.terminated = False

    # -- scope / state helpers ---------------------------------------------------

    def push_scope(self) -> None:
        self.slots.append({})

    def pop_scope(self) -> None:
        for name in self.slots.pop():
            self.values.pop(name, None)

    def declare(self, name: str, slot: Slot) -> None:
        if name in self.slots[-1]:
            raise CodegenError(f"{self.func.name}: redeclaration of '{name}'")
        self.slots[-1][name] = slot

    def lookup(self, name: str) -> Slot:
        for scope in reversed(self.slots):
            if name in scope:
                return scope[name]
        gv = self.module.globals.get(name)
        if gv is not None:
            ctype = CType(gv.elem_type.bits, signed=self._global_signed(name))
            return Slot("array", ctype, gv)
        raise CodegenError(f"{self.func.name}: undefined variable '{name}'")

    def _global_signed(self, name: str) -> bool:
        return name in self._signed_globals

    def snapshot(self) -> dict[str, Value]:
        return dict(self.values)

    def restore(self, state: dict[str, Value]) -> None:
        self.values = dict(state)

    # -- block helpers -------------------------------------------------------

    def new_block(self, hint: str) -> BasicBlock:
        return self.func.add_block(f"{hint}.{self.func.next_name('b')}")

    def switch_to(self, block: BasicBlock) -> None:
        self.builder.set_block(block)
        self.terminated = False

    def merge_into(
        self,
        edges: list[tuple[BasicBlock, dict[str, Value]]],
        target: BasicBlock,
    ) -> dict[str, Value]:
        """Merge variable states along ``edges`` into ``target`` with phis.

        Every edge's block must already branch (solely) to ``target``.
        Only names visible in all states are merged.
        """
        if not edges:
            return {}
        names = set(edges[0][1])
        for _, state in edges[1:]:
            names &= set(state)
        merged: dict[str, Value] = {}
        builder = IRBuilder(target)
        for name in sorted(names):
            incoming = [state[name] for _, state in edges]
            first = incoming[0]
            if all(v is first for v in incoming):
                merged[name] = first
                continue
            phi = builder.phi(first.type, self.func.next_name(f"{name}.phi"))
            for (block, state) in edges:
                phi.add_incoming(state[name], block)
            merged[name] = phi
        return merged

    # -- conversions ------------------------------------------------------------

    def convert(self, value: Value, src: CType, dst: CType) -> Value:
        if src.pointer or dst.pointer:
            if src == dst:
                return value
            raise CodegenError(f"{self.func.name}: cannot convert pointer types")
        if src.bits == dst.bits:
            return value
        if dst.bits > src.bits:
            if src.signed:
                return self.builder.sext(value, dst.bits)
            return self.builder.zext(value, dst.bits)
        return self.builder.trunc(value, dst.bits)

    def unify(self, lv: Value, lt: CType, rv: Value, rt: CType):
        """Usual arithmetic conversions: widen to the larger width."""
        bits = max(lt.bits, rt.bits, 8)
        signed = lt.signed and rt.signed
        target = CType(bits, signed)
        return (
            self.convert(lv, lt, target),
            self.convert(rv, rt, target),
            target,
        )

    # -- expressions --------------------------------------------------------------

    def gen_expr(self, expr: Expr, want: Optional[CType] = None):
        """Generate ``expr``; returns (Value, CType)."""
        if isinstance(expr, NumExpr):
            ctype = expr.ctype or want
            if ctype is None or ctype.pointer or ctype.bits == 1:
                ctype = U32 if expr.value.bit_length() <= 32 else CType(64)
            return Constant(_ir_type(ctype), expr.value), ctype
        if isinstance(expr, VarExpr):
            slot = self.lookup(expr.name)
            if slot.kind == "ssa":
                return self.values[expr.name], slot.ctype
            if slot.kind in ("array", "ptr"):
                base = slot.base if slot.kind == "array" else self.values[expr.name]
                if self._is_global_scalar(slot):
                    value = self.builder.load(base)
                    return value, CType(slot.ctype.bits, slot.ctype.signed)
                return base, CType(slot.ctype.bits, slot.ctype.signed, pointer=True)
            raise AssertionError("unreachable")
        if isinstance(expr, IndexExpr):
            addr, elem = self.gen_element_addr(expr.base, expr.index)
            value = self.builder.load(addr)
            return value, elem
        if isinstance(expr, AddrOfExpr):
            addr, elem = self.gen_element_addr(expr.base, expr.index)
            return addr, CType(elem.bits, elem.signed, pointer=True)
        if isinstance(expr, BinaryExpr):
            return self.gen_binary(expr)
        if isinstance(expr, UnaryExpr):
            return self.gen_unary(expr, want)
        if isinstance(expr, CastExpr):
            value, ctype = self.gen_expr(expr.operand, expr.ctype)
            return self.convert(value, ctype, expr.ctype), expr.ctype
        if isinstance(expr, CallExpr):
            return self.gen_call(expr)
        if isinstance(expr, CondExpr):
            return self.gen_cond_expr(expr, want)
        raise CodegenError(f"{self.func.name}: cannot generate {type(expr).__name__}")

    def gen_unary(self, expr, want: Optional[CType]):
        if expr.op == "-":
            value, ctype = self.gen_expr(expr.operand, want)
            if ctype.bits == 1:
                value, ctype = self._bool_to_int(value)
            zero = Constant(_ir_type(ctype), 0)
            return self.builder.sub(zero, value), ctype
        if expr.op == "~":
            value, ctype = self.gen_expr(expr.operand, want)
            if ctype.bits == 1:
                value, ctype = self._bool_to_int(value)
            ones = Constant(_ir_type(ctype), _ir_type(ctype).mask)
            return self.builder.xor(value, ones), ctype
        if expr.op == "!":
            cond = self.gen_condition(expr.operand)
            true = Constant(int_type(1), 1)
            return self.builder.xor(cond, true), BOOL
        raise CodegenError(f"unknown unary operator {expr.op}")

    def _bool_to_int(self, value: Value):
        return self.builder.zext(value, 32), U32

    def gen_binary(self, expr: BinaryExpr):
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_condition(expr), BOOL
        if op in CMP_OP or op in CMP_UNSIGNED:
            lv, lt = self.gen_expr(expr.lhs)
            rv, rt = self.gen_expr(expr.rhs, lt if isinstance(expr.rhs, NumExpr) else None)
            lv, lt = self._normalize_operand(lv, lt)
            rv, rt = self._normalize_operand(rv, rt)
            lv, rv, ty = self.unify(lv, lt, rv, rt)
            if op in CMP_OP:
                pred = CMP_OP[op]
            else:
                pred = (CMP_SIGNED if ty.signed else CMP_UNSIGNED)[op]
            return self.builder.icmp(pred, lv, rv), BOOL
        lv, lt = self.gen_expr(expr.lhs)
        rv, rt = self.gen_expr(expr.rhs, lt if isinstance(expr.rhs, NumExpr) else None)
        lv, lt = self._normalize_operand(lv, lt)
        rv, rt = self._normalize_operand(rv, rt)
        if op in (">>",):
            rv = self.convert(rv, rt, lt)
            opcode = "ashr" if lt.signed else "lshr"
            return self.builder.binop(opcode, lv, rv), lt
        if op == "<<":
            rv = self.convert(rv, rt, lt)
            return self.builder.shl(lv, rv), lt
        lv, rv, ty = self.unify(lv, lt, rv, rt)
        if op in ARITH_OP:
            return self.builder.binop(ARITH_OP[op], lv, rv), ty
        if op == "/":
            return self.builder.binop("sdiv" if ty.signed else "udiv", lv, rv), ty
        if op == "%":
            return self.builder.binop("srem" if ty.signed else "urem", lv, rv), ty
        raise CodegenError(f"unknown binary operator {op}")

    def _normalize_operand(self, value: Value, ctype: CType):
        """Pointers may not enter arithmetic; bools widen to u32."""
        if ctype.pointer:
            raise CodegenError(f"{self.func.name}: pointer used in arithmetic")
        if ctype.bits == 1:
            return self.builder.zext(value, 32), U32
        return value, ctype

    def gen_call(self, expr: CallExpr):
        sig = self.signatures.get(expr.callee)
        if sig is None:
            raise CodegenError(f"{self.func.name}: call to unknown '{expr.callee}'")
        if len(expr.args) != len(sig.params):
            raise CodegenError(
                f"{self.func.name}: '{expr.callee}' expects {len(sig.params)} "
                f"args, got {len(expr.args)}"
            )
        args = []
        for arg_expr, ptype in zip(expr.args, sig.params):
            value, ctype = self.gen_expr(arg_expr, ptype if not ptype.pointer else None)
            if ptype.pointer:
                if not ctype.pointer or ctype.bits != ptype.bits:
                    raise CodegenError(
                        f"{self.func.name}: pointer argument mismatch in call "
                        f"to '{expr.callee}'"
                    )
                args.append(value)
            else:
                if ctype.bits == 1:
                    value, ctype = self._bool_to_int(value)
                args.append(self.convert(value, ctype, ptype))
        ret_ir = _ir_type(sig.ret) if sig.ret is not None else VOID
        call = self.builder.call(expr.callee, args, ret_ir)
        return call, (sig.ret if sig.ret is not None else U32)

    def gen_cond_expr(self, expr: CondExpr, want: Optional[CType]):
        cond = self.gen_condition(expr.cond)
        then_bb = self.new_block("ternt")
        else_bb = self.new_block("ternf")
        join_bb = self.new_block("ternj")
        self.builder.condbr(cond, then_bb, else_bb)

        self.switch_to(then_bb)
        tv, tt = self.gen_expr(expr.if_true, want)
        if tt.bits == 1:
            tv, tt = self._bool_to_int(tv)
        then_end = self.builder.block
        then_state = self.snapshot()

        self.switch_to(else_bb)
        fv, ft = self.gen_expr(expr.if_false, want or tt)
        if ft.bits == 1:
            fv, ft = self._bool_to_int(fv)
        # Unify the arm types.
        bits = max(tt.bits, ft.bits)
        signed = tt.signed and ft.signed
        ty = CType(bits, signed)
        fv = self.convert(fv, ft, ty)
        else_end = self.builder.block
        self.builder.br(join_bb)

        self.builder.set_block(then_end)
        tv = self.convert(tv, tt, ty)
        self.builder.br(join_bb)

        self.switch_to(join_bb)
        phi = self.builder.phi(_ir_type(ty))
        phi.add_incoming(tv, then_end)
        phi.add_incoming(fv, else_end)
        self.restore(then_state)  # arms cannot assign scalars
        return phi, ty

    def gen_element_addr(self, base_name: str, index_expr: Expr):
        slot = self.lookup(base_name)
        if slot.kind == "ssa":
            raise CodegenError(
                f"{self.func.name}: '{base_name}' is scalar, cannot index"
            )
        base = slot.base if slot.kind == "array" else self.values[base_name]
        index, itype = self.gen_expr(index_expr, U32)
        if itype.pointer:
            raise CodegenError(f"{self.func.name}: pointer used as index")
        if itype.bits == 1:
            index, itype = self._bool_to_int(index)
        index = self.convert(index, itype, CType(32, itype.signed))
        addr = self.builder.gep(base, index)
        return addr, CType(slot.ctype.bits, slot.ctype.signed)

    # -- conditions ------------------------------------------------------------

    def gen_condition(self, expr: Expr) -> Value:
        """Generate ``expr`` as an i1 with short-circuit && / ||."""
        if isinstance(expr, BinaryExpr) and expr.op in ("&&", "||"):
            lhs = self.gen_condition(expr.lhs)
            lhs_end = self.builder.block
            rhs_bb = self.new_block("sc")
            join_bb = self.new_block("scj")
            if expr.op == "&&":
                self.builder.condbr(lhs, rhs_bb, join_bb)
            else:
                self.builder.condbr(lhs, join_bb, rhs_bb)
            self.switch_to(rhs_bb)
            rhs = self.gen_condition(expr.rhs)
            rhs_end = self.builder.block
            self.builder.br(join_bb)
            self.switch_to(join_bb)
            phi = self.builder.phi(int_type(1))
            short_val = Constant(int_type(1), 0 if expr.op == "&&" else 1)
            phi.add_incoming(short_val, lhs_end)
            phi.add_incoming(rhs, rhs_end)
            return phi
        if isinstance(expr, UnaryExpr) and expr.op == "!":
            inner = self.gen_condition(expr.operand)
            return self.builder.xor(inner, Constant(int_type(1), 1))
        value, ctype = self.gen_expr(expr)
        if ctype.pointer:
            raise CodegenError(f"{self.func.name}: pointer used as condition")
        if ctype.bits == 1:
            return value
        zero = Constant(_ir_type(ctype), 0)
        return self.builder.icmp("ne", value, zero)

    # -- statements ------------------------------------------------------------

    def gen_body(self, stmts: list[Stmt]) -> None:
        self.push_scope()
        for stmt in stmts:
            if self.terminated:
                # Unreachable code after return/break: park it in a dead
                # block that remove_unreachable_blocks deletes.
                self.switch_to(self.new_block("dead"))
            self.gen_stmt(stmt)
        self.pop_scope()

    def gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, DeclStmt):
            self.gen_decl(stmt)
        elif isinstance(stmt, AssignStmt):
            self.gen_assign(stmt)
        elif isinstance(stmt, IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self.gen_loop(cond=stmt.cond, body=stmt.body, step=None, post_cond=False)
        elif isinstance(stmt, DoWhileStmt):
            self.gen_loop(cond=stmt.cond, body=stmt.body, step=None, post_cond=True)
        elif isinstance(stmt, ForStmt):
            self.push_scope()
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            self.gen_loop(
                cond=stmt.cond or NumExpr(1),
                body=stmt.body,
                step=stmt.step,
                post_cond=False,
            )
            self.pop_scope()
        elif isinstance(stmt, ReturnStmt):
            self.gen_return(stmt)
        elif isinstance(stmt, BreakStmt):
            if not self.loop_stack:
                raise CodegenError(f"{self.func.name}: break outside loop")
            self.loop_stack[-1]["breaks"].append((self.builder.block, self.snapshot()))
            self.terminated = True
        elif isinstance(stmt, ContinueStmt):
            if not self.loop_stack:
                raise CodegenError(f"{self.func.name}: continue outside loop")
            self.loop_stack[-1]["continues"].append(
                (self.builder.block, self.snapshot())
            )
            self.terminated = True
        elif isinstance(stmt, ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, OutStmt):
            value, ctype = self.gen_expr(stmt.value, U32)
            if ctype.bits == 1:
                value, _ = self._bool_to_int(value)
            call = self.builder.call("__out", [value], VOID)
            call.volatile = True
        else:
            raise CodegenError(f"cannot generate statement {type(stmt).__name__}")

    def gen_decl(self, stmt: DeclStmt) -> None:
        if stmt.array_size is not None:
            if stmt.ctype.pointer:
                raise CodegenError("array of pointers not supported")
            # Allocas live in the entry block so frames are fixed-size.
            alloca = self.entry_block.insert(
                0,
                Alloca(
                    _ir_type(stmt.ctype),
                    stmt.array_size,
                    self.func.next_name(stmt.name),
                ),
            )
            self.declare(stmt.name, Slot("array", stmt.ctype, alloca))
            return
        if stmt.ctype.pointer:
            if stmt.init is None:
                raise CodegenError(f"pointer '{stmt.name}' needs an initializer")
            value, ctype = self.gen_expr(stmt.init)
            if not ctype.pointer or ctype.bits != stmt.ctype.bits:
                raise CodegenError(f"pointer initializer mismatch for '{stmt.name}'")
            self.declare(stmt.name, Slot("ptr", stmt.ctype))
            self.values[stmt.name] = value
            return
        if stmt.init is not None:
            value, ctype = self.gen_expr(stmt.init, stmt.ctype)
            if ctype.bits == 1:
                value = self.builder.zext(value, stmt.ctype.bits)
            else:
                value = self.convert(value, ctype, stmt.ctype)
        else:
            value = Constant(_ir_type(stmt.ctype), 0)
        self.declare(stmt.name, Slot("ssa", stmt.ctype))
        self.values[stmt.name] = value

    def gen_assign(self, stmt: AssignStmt) -> None:
        if isinstance(stmt.target, VarExpr):
            slot = self.lookup(stmt.target.name)
            if slot.kind != "ssa":
                if self._is_global_scalar(slot):
                    self._assign_global_scalar(slot, stmt)
                    return
                raise CodegenError(
                    f"{self.func.name}: cannot assign to array "
                    f"'{stmt.target.name}' without index"
                )
            if stmt.op == "=":
                value, ctype = self.gen_expr(stmt.value, slot.ctype)
                if ctype.bits == 1:
                    value = self.builder.zext(value, slot.ctype.bits)
                else:
                    value = self.convert(value, ctype, slot.ctype)
            else:
                current = self.values[stmt.target.name]
                value = self._compound(current, slot.ctype, stmt.op, stmt.value)
            self.values[stmt.target.name] = value
            return
        # Array element assignment.
        target = stmt.target
        addr, elem = self.gen_element_addr(target.base, target.index)
        if stmt.op == "=":
            value, ctype = self.gen_expr(stmt.value, elem)
            if ctype.bits == 1:
                value = self.builder.zext(value, elem.bits)
            else:
                value = self.convert(value, ctype, elem)
        else:
            current = self.builder.load(addr)
            value = self._compound(current, elem, stmt.op, stmt.value)
        self.builder.store(value, addr)

    @staticmethod
    def _is_global_scalar(slot: Slot) -> bool:
        return (
            slot.kind == "array"
            and isinstance(slot.base, GlobalVariable)
            and slot.base.count == 1
        )

    def _assign_global_scalar(self, slot: Slot, stmt: AssignStmt) -> None:
        elem = CType(slot.ctype.bits, slot.ctype.signed)
        if stmt.op == "=":
            value, ctype = self.gen_expr(stmt.value, elem)
            if ctype.bits == 1:
                value = self.builder.zext(value, elem.bits)
            else:
                value = self.convert(value, ctype, elem)
        else:
            current = self.builder.load(slot.base)
            value = self._compound(current, elem, stmt.op, stmt.value)
        self.builder.store(value, slot.base)

    def _compound(self, current: Value, ctype: CType, op: str, rhs_expr: Expr) -> Value:
        rhs, rtype = self.gen_expr(rhs_expr, ctype)
        if rtype.bits == 1:
            rhs, rtype = self._bool_to_int(rhs)
        base_op = op[:-1]  # strip '='
        if base_op in (">>", "<<"):
            rhs = self.convert(rhs, rtype, ctype)
            if base_op == "<<":
                return self.builder.shl(current, rhs)
            opcode = "ashr" if ctype.signed else "lshr"
            return self.builder.binop(opcode, current, rhs)
        rhs = self.convert(rhs, rtype, ctype)
        if base_op in ARITH_OP:
            return self.builder.binop(ARITH_OP[base_op], current, rhs)
        if base_op == "/":
            return self.builder.binop("sdiv" if ctype.signed else "udiv", current, rhs)
        if base_op == "%":
            return self.builder.binop("srem" if ctype.signed else "urem", current, rhs)
        raise CodegenError(f"unknown compound operator {op}")

    def gen_if(self, stmt: IfStmt) -> None:
        cond = self.gen_condition(stmt.cond)
        then_bb = self.new_block("then")
        else_bb = self.new_block("else") if stmt.else_body else None
        join_bb = self.new_block("endif")
        self.builder.condbr(cond, then_bb, join_bb if else_bb is None else else_bb)
        entry_state = self.snapshot()

        edges: list[tuple[BasicBlock, dict[str, Value]]] = []
        if else_bb is None:
            edges.append((self.builder.block, entry_state))

        self.switch_to(then_bb)
        self.gen_body(stmt.then_body)
        if not self.terminated:
            end = self.builder.block
            self.builder.br(join_bb)
            edges.append((end, self.snapshot()))

        if else_bb is not None:
            self.restore(entry_state)
            self.switch_to(else_bb)
            self.gen_body(stmt.else_body)
            if not self.terminated:
                end = self.builder.block
                self.builder.br(join_bb)
                edges.append((end, self.snapshot()))

        if not edges:
            # Both arms terminated: the join block is unreachable.
            self.func.remove_block(join_bb)
            self.terminated = True
            return
        merged = self.merge_into(edges, join_bb)
        self.switch_to(join_bb)
        self.restore(merged)

    def gen_loop(self, *, cond, body, step, post_cond: bool) -> None:
        preheader = self.builder.block
        header = self.new_block("loop")
        self.builder.br(header)

        # Pre-insert phis for every visible scalar; trivially-redundant ones
        # are removed by remove_trivial_phis after codegen.
        header_builder = IRBuilder(header)
        phis: dict[str, Phi] = {}
        entry_state = self.snapshot()
        for name in sorted(entry_state):
            value = entry_state[name]
            phi = header_builder.phi(value.type, self.func.next_name(f"{name}.loop"))
            phi.add_incoming(value, preheader)
            phis[name] = phi
        self.restore({name: phi for name, phi in phis.items()})

        exit_bb = self.new_block("endloop")
        frame = {"breaks": [], "continues": []}
        self.loop_stack.append(frame)
        exit_edges: list[tuple[BasicBlock, dict[str, Value]]] = []

        def close_latch(edges: list[tuple[BasicBlock, dict[str, Value]]]) -> None:
            """Route ``edges`` back to the header, filling phi incomings."""
            if not edges:
                return
            if len(edges) == 1:
                latch_block, state = edges[0]
            else:
                latch_block = self.new_block("latch")
                for block, _ in edges:
                    IRBuilder(block).br(latch_block)
                state = self.merge_into(edges, latch_block)
            IRBuilder(latch_block).br(header)
            for name, phi in phis.items():
                phi.add_incoming(state[name], latch_block)

        if post_cond:
            # do-while: header is the body start.
            self.switch_to(header)
            self.gen_body(body)
            body_edges: list[tuple[BasicBlock, dict[str, Value]]] = []
            if not self.terminated:
                body_edges.append((self.builder.block, self.snapshot()))
            body_edges.extend(frame["continues"])
            if body_edges:
                if len(body_edges) == 1 and body_edges[0][0] is self.builder.block \
                        and not self.terminated:
                    cond_block, state = body_edges[0]
                    self.restore(state)
                else:
                    cond_block = self.new_block("docond")
                    for block, _ in body_edges:
                        IRBuilder(block).br(cond_block)
                    state = self.merge_into(body_edges, cond_block)
                    self.switch_to(cond_block)
                    self.restore(state)
                cond_val = self.gen_condition(cond)
                cond_end = self.builder.block
                cond_state = self.snapshot()
                self.builder.condbr(cond_val, header, exit_bb)
                for name, phi in phis.items():
                    phi.add_incoming(cond_state[name], cond_end)
                exit_edges.append((cond_end, cond_state))
        else:
            # while/for: condition evaluated in the header.
            self.switch_to(header)
            cond_val = self.gen_condition(cond)
            cond_end = self.builder.block
            cond_state = self.snapshot()
            body_bb = self.new_block("body")
            self.builder.condbr(cond_val, body_bb, exit_bb)
            exit_edges.append((cond_end, cond_state))

            self.switch_to(body_bb)
            self.restore(cond_state)
            self.gen_body(body)
            step_edges: list[tuple[BasicBlock, dict[str, Value]]] = []
            if not self.terminated:
                step_edges.append((self.builder.block, self.snapshot()))
            step_edges.extend(frame["continues"])
            if step_edges:
                if step is not None:
                    step_bb = self.new_block("step")
                    for block, _ in step_edges:
                        IRBuilder(block).br(step_bb)
                    state = self.merge_into(step_edges, step_bb)
                    self.switch_to(step_bb)
                    self.restore(state)
                    self.gen_stmt(step)
                    close_latch([(self.builder.block, self.snapshot())])
                else:
                    close_latch(step_edges)

        self.loop_stack.pop()
        exit_edges.extend(frame["breaks"])
        if not exit_edges:
            self.func.remove_block(exit_bb)
            self.terminated = True
            return
        for block, _ in exit_edges:
            term = block.terminator
            if term is None:
                IRBuilder(block).br(exit_bb)
        merged = self.merge_into(exit_edges, exit_bb)
        self.switch_to(exit_bb)
        self.restore(merged)

    def gen_return(self, stmt: ReturnStmt) -> None:
        if self.decl.ret_type is None:
            if stmt.value is not None:
                raise CodegenError(f"{self.func.name}: void function returns value")
            self.builder.ret()
        else:
            if stmt.value is None:
                raise CodegenError(f"{self.func.name}: missing return value")
            value, ctype = self.gen_expr(stmt.value, self.decl.ret_type)
            if ctype.bits == 1:
                value = self.builder.zext(value, self.decl.ret_type.bits)
            else:
                value = self.convert(value, ctype, self.decl.ret_type)
            self.builder.ret(value)
        self.terminated = True

    # -- driver ------------------------------------------------------------------

    _signed_globals: set = set()

    def run(self) -> None:
        self.entry_block = self.func.add_block("entry")
        self.switch_to(self.entry_block)
        for param, arg in zip(self.decl.params, self.func.args):
            if param.ctype.pointer:
                self.declare(param.name, Slot("ptr", param.ctype))
                self.values[param.name] = arg
            else:
                self.declare(param.name, Slot("ssa", param.ctype))
                self.values[param.name] = arg
        self.gen_body(self.decl.body)
        if not self.terminated:
            if self.decl.ret_type is None:
                self.builder.ret()
            else:
                self.builder.ret(Constant(_ir_type(self.decl.ret_type), 0))


def remove_trivial_phis(func: Function) -> int:
    """Remove phis whose incoming values are all identical (or self)."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for phi in block.phis():
                values = {v for v in phi.operands if v is not phi}
                if len(values) == 1:
                    (replacement,) = values
                    phi.replace_all_uses_with(replacement)
                    phi.erase_from_parent()
                    removed += 1
                    changed = True
    return removed


def compile_program(program: Program, name: str = "program") -> Module:
    """Lower a parsed MiniC :class:`Program` to an IR :class:`Module`."""
    module = Module(name)
    signed_globals: set[str] = set()
    for gdecl in program.globals:
        module.add_global(
            GlobalVariable(
                gdecl.name, _ir_type(gdecl.ctype), gdecl.array_size, gdecl.init
            )
        )
        if gdecl.ctype.signed:
            signed_globals.add(gdecl.name)

    signatures: dict[str, Signature] = {}
    ir_funcs: dict[str, Function] = {}
    for fdecl in program.functions:
        signatures[fdecl.name] = Signature(
            fdecl.ret_type, [p.ctype for p in fdecl.params]
        )
        arg_specs = []
        for param in fdecl.params:
            if param.ctype.pointer:
                arg_specs.append((param.name, PointerType(_ir_type(param.ctype))))
            else:
                arg_specs.append((param.name, _ir_type(param.ctype)))
        ret_ir = _ir_type(fdecl.ret_type) if fdecl.ret_type is not None else VOID
        ir_funcs[fdecl.name] = module.add_function(
            Function(fdecl.name, ret_ir, arg_specs)
        )

    for fdecl in program.functions:
        gen = FunctionCodegen(module, signatures, fdecl, ir_funcs[fdecl.name])
        gen._signed_globals = signed_globals
        gen.run()
        remove_trivial_phis(gen.func)
        remove_unreachable_blocks(gen.func)
    return module


def compile_source(source: str, name: str = "program") -> Module:
    """Front-end entry point: MiniC source text → IR module."""
    from repro.frontend.parser import parse

    return compile_program(parse(source), name)
