"""MiniC AST → source text.

The inverse of :mod:`repro.frontend.parser`: renders a :class:`Program` back
into parseable MiniC.  Used by the fuzzer (``repro.fuzz``) to turn generated
and shrunk ASTs into replayable source artifacts; round-tripping through
``parse(print_program(ast))`` is covered by tests.

Expressions are printed fully parenthesized, so the printer never has to
reason about precedence and the round-trip is exact by construction.
"""

from __future__ import annotations

from repro.frontend.ast_nodes import (
    AddrOfExpr,
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CondExpr,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    OutStmt,
    Program,
    ReturnStmt,
    Stmt,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)


def print_expr(expr: Expr) -> str:
    if isinstance(expr, NumExpr):
        return str(expr.value)
    if isinstance(expr, VarExpr):
        return expr.name
    if isinstance(expr, IndexExpr):
        return f"{expr.base}[{print_expr(expr.index)}]"
    if isinstance(expr, AddrOfExpr):
        return f"&{expr.base}[{print_expr(expr.index)}]"
    if isinstance(expr, UnaryExpr):
        return f"({expr.op}{print_expr(expr.operand)})"
    if isinstance(expr, BinaryExpr):
        return f"({print_expr(expr.lhs)} {expr.op} {print_expr(expr.rhs)})"
    if isinstance(expr, CastExpr):
        return f"(({expr.ctype!r}){print_expr(expr.operand)})"
    if isinstance(expr, CallExpr):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, CondExpr):
        return (
            f"({print_expr(expr.cond)} ? {print_expr(expr.if_true)}"
            f" : {print_expr(expr.if_false)})"
        )
    raise TypeError(f"cannot print expression {type(expr).__name__}")


def _print_simple(stmt: Stmt) -> str:
    """A statement as it appears in a ``for`` header (no trailing ';')."""
    if isinstance(stmt, AssignStmt):
        return f"{print_expr(stmt.target)} {stmt.op} {print_expr(stmt.value)}"
    if isinstance(stmt, ExprStmt):
        return print_expr(stmt.expr)
    if isinstance(stmt, DeclStmt):
        decl = f"{stmt.ctype!r} {stmt.name}"
        if stmt.array_size is not None:
            decl += f"[{stmt.array_size}]"
        if stmt.init is not None:
            decl += f" = {print_expr(stmt.init)}"
        return decl
    raise TypeError(f"cannot print simple statement {type(stmt).__name__}")


def _print_block(body: list, indent: int) -> list:
    pad = "    " * indent
    lines = [pad + "{"]
    for stmt in body:
        lines.extend(print_stmt(stmt, indent + 1))
    lines.append(pad + "}")
    return lines


def print_stmt(stmt: Stmt, indent: int = 0) -> list:
    """Render one statement as a list of source lines."""
    pad = "    " * indent
    if isinstance(stmt, (AssignStmt, ExprStmt, DeclStmt)):
        return [pad + _print_simple(stmt) + ";"]
    if isinstance(stmt, IfStmt):
        lines = [pad + f"if ({print_expr(stmt.cond)})"]
        lines.extend(_print_block(stmt.then_body, indent))
        if stmt.else_body:
            lines.append(pad + "else")
            lines.extend(_print_block(stmt.else_body, indent))
        return lines
    if isinstance(stmt, WhileStmt):
        lines = [pad + f"while ({print_expr(stmt.cond)})"]
        lines.extend(_print_block(stmt.body, indent))
        return lines
    if isinstance(stmt, DoWhileStmt):
        lines = [pad + "do"]
        lines.extend(_print_block(stmt.body, indent))
        lines.append(pad + f"while ({print_expr(stmt.cond)});")
        return lines
    if isinstance(stmt, ForStmt):
        init = _print_simple(stmt.init) if stmt.init is not None else ""
        cond = print_expr(stmt.cond) if stmt.cond is not None else ""
        step = _print_simple(stmt.step) if stmt.step is not None else ""
        lines = [pad + f"for ({init}; {cond}; {step})"]
        lines.extend(_print_block(stmt.body, indent))
        return lines
    if isinstance(stmt, ReturnStmt):
        if stmt.value is None:
            return [pad + "return;"]
        return [pad + f"return {print_expr(stmt.value)};"]
    if isinstance(stmt, BreakStmt):
        return [pad + "break;"]
    if isinstance(stmt, ContinueStmt):
        return [pad + "continue;"]
    if isinstance(stmt, OutStmt):
        return [pad + f"out({print_expr(stmt.value)});"]
    raise TypeError(f"cannot print statement {type(stmt).__name__}")


def print_global(decl: GlobalDecl) -> str:
    text = f"{decl.ctype!r} {decl.name}"
    if decl.array_size != 1:
        text += f"[{decl.array_size}]"
    if decl.init:
        if decl.array_size != 1:
            text += " = {" + ", ".join(str(v) for v in decl.init) + "}"
        else:
            text += f" = {decl.init[0]}"
    return text + ";"


def print_function(decl: FuncDecl) -> list:
    ret = "void" if decl.ret_type is None else repr(decl.ret_type)
    params = ", ".join(f"{p.ctype!r} {p.name}" for p in decl.params)
    lines = [f"{ret} {decl.name}({params})"]
    lines.extend(_print_block(decl.body, 0))
    return lines


def print_program(program: Program) -> str:
    """Render a whole :class:`Program` as MiniC source text."""
    lines: list = []
    for gdecl in program.globals:
        lines.append(print_global(gdecl))
    for fdecl in program.functions:
        if lines:
            lines.append("")
        lines.extend(print_function(fdecl))
    return "\n".join(lines) + "\n"
