"""Figure 16 / RQ6 — susan-edges profile×run cross-product CDF."""

from conftest import run_once
from repro.eval import figures


def test_fig16_susan_cdf(benchmark):
    data = run_once(benchmark, figures.fig16_susan_cdf, 5)
    print("\n=== Fig 16: susan-edges relative dynamic instructions (CDF) ===")
    for heuristic, cdf in data["cdfs"].items():
        deciles = [cdf[int(q * (len(cdf) - 1))] for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
        print(
            f"{heuristic:4s} quartiles: "
            + "  ".join(f"{v:.3f}" for v in deciles)
            + f"   p95={data['p95'][heuristic]:.3f}"
        )
    print("paper: MAX is robust across image pairs (tight CDF); AVG and MIN")
    print("       are aggressive and degrade on mismatched profile images")
    assert data["p95"]["max"] <= data["p95"]["min"] * 1.25
