"""Figure 5 — profiler classification under T = MAX / AVG / MIN."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig05_heuristics(benchmark):
    data = run_once(benchmark, figures.fig05_heuristics)
    rows = [
        [
            r["benchmark"],
            f"{r['max'][8]:5.1f}",
            f"{r['avg'][8]:5.1f}",
            f"{r['min'][8]:5.1f}",
        ]
        for r in data["rows"]
    ]
    print_table(
        "Fig 5: % of dynamic assignments classified 8-bit per heuristic",
        ["benchmark", "MAX", "AVG", "MIN"],
        rows,
    )
    print("paper: aggressiveness grows MAX < AVG < MIN")
    for r in data["rows"]:
        assert r["min"][8] >= r["avg"][8] >= r["max"][8]
