"""RQ3 — ablations of the BITSPEC-specific optimizations."""

from conftest import run_once
from repro.eval import figures


def test_rq3_optimizations(benchmark):
    data = run_once(benchmark, figures.rq3_optimizations)
    print("\n=== RQ3: optimization ablations ===")
    for name, cell in data.items():
        for metric, value in cell.items():
            print(f"{name:36s} {metric}: {value:+.2f}%")
    print("paper: removing compare elimination costs dijkstra +9.5% energy")
    print("       (+13.1% instructions); removing bitmask elision costs")
    print("       blowfish +6.3% and rijndael +33.4% vs BASELINE")
    dijkstra = data["dijkstra-compare-elimination"]
    assert dijkstra["energy_increase_percent"] >= 0.0
    assert data["rijndael-bitmask-elision"][
        "energy_increase_vs_baseline_percent"
    ] >= 0.0
