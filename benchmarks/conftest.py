"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables/figures and prints the
reproduced rows.  Figure computations are deterministic simulations, so each
runs exactly once (``pedantic`` with one round); the benchmark timings then
report the cost of regenerating each artifact.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title: str, header: list, rows: list) -> None:
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def pct(x: float) -> str:
    return f"{100.0 * x:6.1f}%"


def rel(x: float) -> str:
    return f"{x:5.3f}"
