"""Figure 8 / RQ0 — the headline result: energy, dynamic instructions, EPI."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig08_energy(benchmark):
    data = run_once(benchmark, figures.fig08_energy)
    rows = [
        [
            r["benchmark"],
            f"{r['energy_rel']:.3f}",
            f"{r['instructions_rel']:.3f}",
            f"{r['epi_rel']:.3f}",
            r["misspeculations"],
        ]
        for r in data["rows"]
    ]
    print_table(
        "Fig 8: BITSPEC relative to BASELINE",
        ["benchmark", "energy", "dyn insts", "EPI", "misspecs"],
        rows,
    )
    print(
        f"measured: mean energy reduction {data['mean_energy_reduction_percent']:.1f}%  "
        f"max {data['max_energy_reduction_percent']:.1f}%  "
        f"mean EPI reduction {data['mean_epi_reduction_percent']:.1f}%"
    )
    print("paper:    mean energy reduction 9.9%, max 28.2% (rijndael), EPI -10.36%")
    assert data["mean_energy_reduction_percent"] > 3.0
    assert data["max_energy_reduction_percent"] > 15.0
