"""Figure 2 — register-file packing illustrated.

The paper's Figure 2 shows the mechanism behind RQ1: with 32-bit-only
register access, simultaneously-live variables beyond the register count
spill to the stack; with 8-bit slices, four narrow variables share one
register.  This bench constructs a kernel with ~24 simultaneously-live
byte-sized accumulators (three times the allocatable registers) and
measures the spill traffic each ISA produces.
"""

from conftest import print_table, run_once
from repro.core import CompilerConfig, compile_binary

N_ACCS = 24

_DECLS = "\n".join(f"    u8 a{i} = (u8)seed + {i};" for i in range(N_ACCS))
_UPDATES = "\n".join(
    f"        a{i} = (a{i} ^ data[(idx + {i}) & 63]) + {i % 7};"
    for i in range(N_ACCS)
)
_FOLD = " + ".join(f"(u32)a{i}" for i in range(N_ACCS))

SOURCE = f"""
u8 data[64];
u32 seed;
u32 rounds;
u32 sink;

void main() {{
{_DECLS}
    for (u32 r = 0; r < rounds; r += 1) {{
        u32 idx = r & 63;
{_UPDATES}
    }}
    sink = {_FOLD};
    out(sink);
}}
"""


def test_fig02_register_packing(benchmark):
    def measure():
        inputs = {
            "data": [(i * 41) % 256 for i in range(64)],
            "seed": 9,
            "rounds": 64,
        }
        rows = []
        reference = None
        for config in (CompilerConfig.baseline(), CompilerConfig.bitspec("max")):
            binary = compile_binary(SOURCE, config, profile_inputs=inputs)
            run = binary.run(inputs)
            if reference is None:
                reference = run.output
            assert run.output == reference, config.name
            rows.append(
                (
                    config.name,
                    run.instructions,
                    run.spill_loads,
                    run.spill_stores,
                    run.counters.rf_reads_by_width[1],
                    run.energy().total,
                )
            )
        return rows

    rows = run_once(benchmark, measure)
    base = rows[0]
    print_table(
        f"Fig 2: {N_ACCS} simultaneously-live byte accumulators",
        ["config", "insts", "spill loads", "spill stores", "8-bit reads", "energy rel"],
        [
            [name, insts, loads, stores, slice_reads, f"{energy/base[5]:.3f}"]
            for name, insts, loads, stores, slice_reads, energy in rows
        ],
    )
    print("paper: four 8-bit variables pack into one 32-bit register,")
    print("       removing the spill loads/stores the baseline needs")
    baseline, bitspec = rows
    assert baseline[2] > 0, "the kernel must pressure the baseline into spilling"
    assert bitspec[2] < baseline[2], "packing must reduce spill loads"
    assert bitspec[5] < baseline[5], "packing must save energy"
