"""Figure 13 / RQ4 — the expander ablation."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig13_expander(benchmark):
    data = run_once(benchmark, figures.fig13_expander)
    rows = [
        [
            r["benchmark"],
            f"{r['baseline_noexp_energy_rel']:.3f}",
            f"{r['bitspec_epi_rel']:.3f}",
            f"{r['bitspec_noexp_epi_rel']:.3f}",
        ]
        for r in data["rows"]
    ]
    print_table(
        "Fig 13: expander ablation",
        ["benchmark", "baseline-noexp energy", "bitspec EPI", "bitspec-noexp EPI"],
        rows,
    )
    print(
        f"measured: baseline pays {data['baseline_energy_increase_without_expander_percent']:.1f}% "
        f"without the expander; BITSPEC EPI reduction "
        f"{data['bitspec_epi_reduction_with_expander_percent']:.1f}% with vs "
        f"{data['bitspec_epi_reduction_without_expander_percent']:.1f}% without"
    )
    print("paper:    ~10% baseline energy increase without the expander;")
    print("          BITSPEC EPI -10.36% with expander vs -6.41% without")
    assert data["baseline_energy_increase_without_expander_percent"] > 0
