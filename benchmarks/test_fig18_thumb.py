"""Figure 18 / RQ9 — the compact (Thumb-like) ISA comparison."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig18_thumb(benchmark):
    data = run_once(benchmark, figures.fig18_thumb)
    rows = [
        [r["benchmark"], f"{r['instructions_rel']:.3f}"] for r in data["rows"]
    ]
    print_table(
        "Fig 18: Thumb dynamic instructions relative to BASELINE",
        ["benchmark", "instructions"],
        rows,
    )
    print(
        f"measured: +{data['mean_instruction_increase_percent']:.1f}% mean, "
        f"+{data['max_instruction_increase_percent']:.1f}% max"
    )
    print("paper:    +25.76% mean, +73.59% max — why BITSPEC extends the")
    print("          32-bit ISA rather than Thumb")
    assert data["mean_instruction_increase_percent"] > 5.0
