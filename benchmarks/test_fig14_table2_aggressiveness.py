"""Figure 14 + Table 2 / RQ5 — heuristic aggressiveness and misspeculation,
plus the handler-branch-weight allocator deep dive."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig14_table2_aggressiveness(benchmark):
    data = run_once(benchmark, figures.fig14_table2_aggressiveness)
    rows = [
        [
            r["benchmark"],
            f"{r['max_energy_rel']:.2f}",
            r["max_misspecs"],
            f"{r['avg_energy_rel']:.2f}",
            r["avg_misspecs"],
            f"{r['min_energy_rel']:.2f}",
            r["min_misspecs"],
        ]
        for r in data["rows"]
    ]
    print_table(
        "Fig 14 + Table 2: energy (rel) and misspeculation count per heuristic",
        ["benchmark", "MAX E", "ms", "AVG E", "ms", "MIN E", "ms"],
        rows,
    )
    print("paper: misspeculations grow with aggressiveness and always")
    print("       correlate with increased energy; MAX is best on most")
    for r in data["rows"]:
        assert r["max_misspecs"] <= r["min_misspecs"]


def test_rq5_handler_weights(benchmark):
    data = run_once(benchmark, figures.rq5_handler_weights)
    rows = [
        [
            r["benchmark"],
            r["min_misspecs"],
            f"{r['min_instructions_rel']:.2f}",
            f"{r['min_inverted_instructions_rel']:.2f}",
        ]
        for r in data["rows"]
    ]
    print_table(
        "RQ5: MIN dynamic instructions, default vs inverted handler weights",
        ["benchmark", "misspecs", "default", "inverted"],
        rows,
    )
    print("paper: inverting the handler weights cuts MIN's instruction")
    print("       overhead from +12.5% to +2.6% on average")
