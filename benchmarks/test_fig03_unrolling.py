"""Figure 3 — loop unrolling: dynamic IR vs assembly instructions."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig03_unrolling(benchmark):
    data = run_once(
        benchmark,
        figures.fig03_unrolling,
        ("crc32", "sha", "bitcount"),
        (1, 2, 4, 8),
    )
    rows = []
    for entry in data["rows"]:
        for point in entry["series"]:
            rows.append(
                [
                    entry["benchmark"],
                    point["factor"],
                    point["ir_instructions"],
                    f"{point['ir_rel']:.3f}",
                    point["asm_instructions"],
                    f"{point['asm_rel']:.3f}",
                ]
            )
    print_table(
        "Fig 3: unrolling factor vs dynamic IR / assembly instructions",
        ["benchmark", "factor", "IR", "IR rel", "asm", "asm rel"],
        rows,
    )
    print("paper: IR instructions fall monotonically with unrolling;")
    print("       assembly instructions rise again at factors >= 4")
    for entry in data["rows"]:
        series = entry["series"]
        assert series[-1]["ir_instructions"] <= series[0]["ir_instructions"]
