"""Figure 12 / RQ2 — register packing without speculation."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig12_nospec(benchmark):
    data = run_once(benchmark, figures.fig12_nospec)
    rows = [
        [r["benchmark"], f"{r['bitspec_rel']:.3f}", f"{r['nospec_rel']:.3f}"]
        for r in data["rows"]
    ]
    print_table(
        "Fig 12: energy relative to BASELINE",
        ["benchmark", "BITSPEC", "no speculation (static)"],
        rows,
    )
    gap = data["extra_energy_without_speculation_percent"]
    print(f"measured: without speculation the system gives up {gap:.2f} points")
    print("paper:    3.19% additional energy without speculation;")
    print("          CRC32 achieves no reduction at all without it")
    assert gap > 0.5
