"""RQ7 — does BITSPEC eliminate the need for programmer bitwidths?"""

from conftest import run_once
from repro.eval import figures


def test_rq7_auto_bitwidth(benchmark):
    data = run_once(benchmark, figures.rq7_auto_bitwidth)
    print("\n=== RQ7: all-64-bit source variants (energy rel. BASELINE/orig) ===")
    for name, cell in data.items():
        print(
            f"{name:14s} bitspec(orig)={cell['bitspec_orig_rel']:.3f}  "
            f"baseline(wide)={cell['baseline_wide_rel']:.3f}  "
            f"bitspec(wide)={cell['bitspec_wide_rel']:.3f}"
        )
    print("paper: stringsearch: BITSPEC-wide ~= BITSPEC-orig (answer: yes);")
    print("       dijkstra: below BASELINE-wide but short of parity")
    for cell in data.values():
        assert cell["bitspec_wide_rel"] < cell["baseline_wide_rel"]
