"""Figure 1 — % of dynamic integer instructions per bitwidth under four
selection techniques (required / declared / static / basic-block-max)."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig01_bitwidth_selection(benchmark):
    data = run_once(benchmark, figures.fig01_bitwidth_selection)
    rows = []
    for r in data["rows"]:
        rows.append(
            [
                r["benchmark"],
                f"{r['required'][8]:5.1f}",
                f"{r['declared'][8]:5.1f}",
                f"{r['static'][8]:5.1f}",
                f"{r['bbmax'][8]:5.1f}",
            ]
        )
    print_table(
        "Fig 1: %% of dynamic integer instructions at <=8 bits",
        ["benchmark", "required(a)", "declared(b)", "static(c)", "bb-max(d)"],
        rows,
    )
    means = data["mean_8bit_percent"]
    print(
        f"means: required {means['required']:.1f}%  declared {means['declared']:.1f}%  "
        f"static {means['static']:.1f}%  bb-max {means['bbmax']:.1f}%"
    )
    print("paper: declared 8-bit mean 23%, static (demanded bits) 41%;")
    print("       40-100% of instructions need only 8 bits (Fig 1a)")
    assert means["required"] > means["static"] > 0
    assert means["required"] > means["declared"]
