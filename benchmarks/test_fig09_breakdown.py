"""Figure 9 — per-component energy breakdown (ALU, RF, D$, I$, pipeline)."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig09_breakdown(benchmark):
    data = run_once(benchmark, figures.fig09_breakdown)
    rows = [
        [r["benchmark"]] + [f"{r['rel'][c]:.2f}" for c in
                            ("alu", "regfile", "dcache", "icache", "pipeline")]
        for r in data["rows"]
    ]
    print_table(
        "Fig 9: component energy, BITSPEC / BASELINE",
        ["benchmark", "alu", "regfile", "d$", "i$", "pipeline"],
        rows,
    )
    print("paper: most components shrink on most benchmarks; I$ reduction")
    print("       correlates with dynamic-instruction reduction (CRC32, rijndael)")
    shrunk = sum(
        1 for r in data["rows"] for c in r["rel"].values() if c <= 1.0
    )
    total = sum(len(r["rel"]) for r in data["rows"])
    assert shrunk > total / 2
