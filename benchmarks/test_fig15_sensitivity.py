"""Figure 15 / RQ6 — robustness to alternate profiling inputs."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig15_sensitivity(benchmark):
    data = run_once(benchmark, figures.fig15_sensitivity)
    rows = [
        [
            r["benchmark"],
            f"{r['bitspec_rel']:.3f}",
            f"{r['bitspec_altprofile_rel']:.3f}",
            r["altprofile_misspecs"],
        ]
        for r in data["rows"]
    ]
    print_table(
        "Fig 15: energy relative to BASELINE",
        ["benchmark", "profile=run input", "profile=alternate", "misspecs"],
        rows,
    )
    print(
        f"measured: alternate profiling costs "
        f"{data['mean_energy_increase_percent']:.2f}% on average"
    )
    print("paper:    1.14% average increase with alternate profiling inputs")
