"""Figure 11 / RQ1 — dynamic register-file accesses at 8 vs 32 bits."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig11_regaccess(benchmark):
    data = run_once(benchmark, figures.fig11_regaccess)
    rows = [
        [
            r["benchmark"],
            f"{sum(r['baseline'].values()):.2f}",
            f"{r['bitspec']['8']:.2f}",
            f"{r['bitspec']['32']:.2f}",
            f"{sum(r['bitspec'].values()):.2f}",
        ]
        for r in data["rows"]
    ]
    print_table(
        "Fig 11: register accesses, normalized to BASELINE total",
        ["benchmark", "baseline(32b)", "bitspec 8b", "bitspec 32b", "bitspec total"],
        rows,
    )
    print("paper: total register accesses drop; a large share becomes 8-bit")
    print("       slice accesses at 1/4 the energy of a 32-bit access")
    with_slices = sum(1 for r in data["rows"] if r["bitspec"]["8"] > 0)
    assert with_slices == len(data["rows"])
