"""§3.2.1 — the expander autotuning procedure (scaled-down OpenTuner).

The paper tunes (unrolling factor, max function size, max loop size) for 10
days to minimize dynamic instructions on BASELINE, producing one shared
configuration.  This bench runs the same coordinate-descent search over a
small grid on a subset of kernels and reports the chosen configuration.
"""

from conftest import print_table, run_once
from repro.core import set_global_inputs
from repro.interp import Interpreter
from repro.passes import autotune, build_module, ExpanderConfig
from repro.workloads import get_workload

KERNELS = ("crc32", "bitcount")


def _measure_factory(workload):
    inputs = workload.inputs("train")

    def measure(module):
        set_global_inputs(module, inputs)
        interp = Interpreter(module, trace=True)
        interp.run("main")
        return interp.trace.instructions

    return measure


def test_expander_autotune(benchmark):
    def tune_all():
        results = {}
        for name in KERNELS:
            workload = get_workload(name)
            measure = _measure_factory(workload)
            best = autotune(workload.source, measure)
            default_score = measure(build_module(workload.source, ExpanderConfig()))
            untuned_score = measure(
                build_module(workload.source, ExpanderConfig(unroll_factor=1))
            )
            tuned_score = measure(build_module(workload.source, best))
            results[name] = (best, untuned_score, default_score, tuned_score)
        return results

    results = run_once(benchmark, tune_all)
    rows = []
    for name, (best, untuned, default, tuned) in results.items():
        rows.append(
            [
                name,
                best.unroll_factor,
                best.max_loop_size,
                best.max_callee_size,
                untuned,
                default,
                tuned,
                f"{100 * (1 - tuned / untuned):.1f}%",
            ]
        )
    print_table(
        "Expander autotune (objective: BASELINE dynamic IR instructions)",
        ["kernel", "unroll", "loop-sz", "callee-sz", "no-unroll", "default", "tuned", "gain"],
        rows,
    )
    print("paper: a 10-day offline OpenTuner search over the same space,")
    print("       one output configuration shared by all benchmarks")
    for name, (_, untuned, _, tuned) in results.items():
        assert tuned <= untuned, name
