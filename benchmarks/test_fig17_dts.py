"""Figure 17 / RQ8 — composition with dynamic timing slack (time squeezing)."""

from conftest import print_table, run_once
from repro.eval import figures
from repro.arch import DTSModel
from repro.eval.harness import run as run_record
from repro.core import CompilerConfig


def test_fig17_dts(benchmark):
    data = run_once(benchmark, figures.fig17_dts)
    rows = [
        [
            r["benchmark"],
            f"{r['bitspec_rel']:.3f}",
            f"{r['dts_rel']:.3f}",
            f"{r['dts_bitspec_rel']:.3f}",
            f"{r['product_rel']:.3f}",
        ]
        for r in data["rows"]
    ]
    print_table(
        "Fig 17: energy relative to BASELINE (basicmath excluded, as in paper)",
        ["benchmark", "BITSPEC", "DTS", "DTS+BITSPEC", "product"],
        rows,
    )
    print(
        f"measured: DTS mean reduction {data['dts_mean_reduction_percent']:.1f}%, "
        f"DTS+BITSPEC {data['combo_mean_reduction_percent']:.1f}% "
        f"(max {data['max_combo_reduction_percent']:.1f}%)"
    )
    print("paper:    DTS 28.39%, DTS+BITSPEC 34.95% (up to 45.8%);")
    print("          the combination is roughly the product of its parts")
    for r in data["rows"]:
        assert abs(r["dts_bitspec_rel"] - r["product_rel"]) < 0.12


def test_fig17_bitwidth_aware_ablation(benchmark):
    """The paper's future-work direction: a bitwidth-aware DTS estimator
    exploits the shorter slice carry chains for further savings."""

    def compute():
        record = run_record("bitcount", CompilerConfig.dts_bitspec("max"))
        blind = DTSModel().apply(record.sim).total
        aware = DTSModel.bitwidth_aware().apply(record.sim).total
        return blind, aware

    blind, aware = run_once(benchmark, compute)
    print("\n=== Fig 17 ablation: bitwidth-aware DTS estimation (bitcount) ===")
    print(f"bitwidth-blind estimator:  {blind/1e3:.1f} nJ")
    print(f"bitwidth-aware estimator:  {aware/1e3:.1f} nJ "
          f"({100*(1-aware/blind):.1f}% further reduction)")
    print("paper: proposed as future work — would make DTS+BITSPEC more")
    print("       than the sum of its parts")
    assert aware < blind
