"""Figure 10 / RQ1 — allocator-injected loads/stores/copies."""

from conftest import print_table, run_once
from repro.eval import figures


def test_fig10_spills(benchmark):
    data = run_once(benchmark, figures.fig10_spills)
    rows = []
    for r in data["rows"]:
        rows.append(
            [
                r["benchmark"],
                f"{r['baseline']['loads']:.2f}/{r['baseline']['stores']:.2f}/{r['baseline']['copies']:.2f}",
                f"{r['bitspec']['loads']:.2f}/{r['bitspec']['stores']:.2f}/{r['bitspec']['copies']:.2f}",
            ]
        )
    print_table(
        "Fig 10: spill loads/stores/copies (normalized to BASELINE sum)",
        ["benchmark", "baseline L/S/C", "bitspec L/S/C"],
        rows,
    )
    print("paper: BITSPEC reduces or eliminates spill loads, occasionally")
    print("       trading them for register-register copies")
    fewer_loads = sum(
        1
        for r in data["rows"]
        if r["bitspec"]["loads"] <= r["baseline"]["loads"] + 1e-9
    )
    assert fewer_loads >= len(data["rows"]) / 2
