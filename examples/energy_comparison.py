#!/usr/bin/env python3
"""Compare every compiler/architecture configuration on one workload.

Reproduces a single column of Figures 8/12/14/18 for a chosen MiBench-like
workload, with the per-component breakdown of Figure 9.

Run:  python examples/energy_comparison.py [workload]
"""

import sys

from repro.core import CompilerConfig, compile_binary
from repro.workloads import get_workload, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "stringsearch"
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; pick from {workload_names()}")
    workload = get_workload(name)
    inputs = workload.inputs("test")
    expected = workload.expected_output(inputs)

    configs = [
        CompilerConfig.baseline(),
        CompilerConfig.bitspec("max"),
        CompilerConfig.bitspec("avg"),
        CompilerConfig.bitspec("min"),
        CompilerConfig.nospec(),
        CompilerConfig.thumb(),
    ]

    print(f"=== {name}: {workload.description} ===\n")
    header = (
        f"{'config':14} {'energy nJ':>10} {'rel':>6} {'insts':>8} {'EPI pJ':>7} "
        f"{'misspec':>8} {'alu':>6} {'rf':>6} {'d$':>6} {'i$':>6} {'pipe':>6}"
    )
    print(header)
    print("-" * len(header))

    base_energy = None
    for config in configs:
        binary = compile_binary(
            workload.source, config, profile_inputs=inputs, name=name
        )
        run = binary.run(inputs)
        assert run.output == expected, f"{config.name} broke the program!"
        energy = run.energy()
        if base_energy is None:
            base_energy = energy.total
        print(
            f"{config.name:14} {energy.total/1e3:>10.1f} "
            f"{energy.total/base_energy:>6.2f} {run.instructions:>8} "
            f"{energy.total/run.instructions:>7.1f} {run.misspeculations:>8} "
            f"{energy.alu/1e3:>6.1f} {energy.regfile/1e3:>6.1f} "
            f"{energy.dcache/1e3:>6.1f} {energy.icache/1e3:>6.1f} "
            f"{energy.pipeline/1e3:>6.1f}"
        )

    print("\nAll configurations produced identical output — speculation is")
    print("transparent: misspeculation re-executes at the original bitwidth.")


if __name__ == "__main__":
    main()
