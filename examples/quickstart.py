#!/usr/bin/env python3
"""Quickstart: compile a tiny program with BITSPEC and watch it speculate.

This walks the paper's §3 running example through the whole pipeline:

1. the MiniC front-end produces SSA IR;
2. the profiler observes that ``x`` needs only 8 bits for 255 of its 256
   assignments;
3. the squeezer moves the loop into an 8-bit speculative region with a
   misspeculation handler;
4. the machine executes the loop in a register *slice* until the increment
   to 256 overflows the slice — the hardware bumps PC by Δ into the
   handler, which re-extends state and finishes at the original bitwidth.

Run:  python examples/quickstart.py
"""

from repro.core import CompilerConfig, compile_binary
from repro.ir import print_function

SOURCE = """
u32 result;
void main() {
    u32 x = 0;
    do { x += 1; } while (x <= 255);
    result = x;
    out(x);
}
"""


def main() -> None:
    print("=== BITSPEC quickstart: the paper's running example ===\n")

    baseline = compile_binary(SOURCE, CompilerConfig.baseline())
    base_run = baseline.run()
    print(f"BASELINE : output={base_run.output}  "
          f"instructions={base_run.instructions}  "
          f"energy={base_run.energy().total/1e3:.2f} nJ")

    bitspec = compile_binary(SOURCE, CompilerConfig.bitspec("avg"))
    spec_run = bitspec.run()
    print(f"BITSPEC  : output={spec_run.output}  "
          f"instructions={spec_run.instructions}  "
          f"energy={spec_run.energy().total/1e3:.2f} nJ  "
          f"misspeculations={spec_run.misspeculations}")

    assert spec_run.output == base_run.output == [256]

    print("\n--- squeezed IR (CFG_spec runs at 8 bits; CFG_orig recovers) ---")
    print(print_function(bitspec.module.function("main")))

    print("\n--- the speculative machine loop ---")
    linked = bitspec.linked
    for index in range(min(linked.code_size, 24)):
        inst = linked.insts[index]
        marker = "  <- monitored" if inst.speculative else ""
        print(f"  {index:3d}: {inst!r}{marker}")
    print(f"  ... Δ = {linked.delta}: on misspeculation the PC jumps into "
          f"the skeleton area, which branches to the handler")

    reads = spec_run.counters.rf_reads_by_width
    print(f"\n8-bit register-slice reads : {reads[1]}")
    print(f"32-bit register reads      : {reads[4]}")
    print("\nEach slice access costs 1/4 of a full-width access — that, plus")
    print("reduced spilling, is where BITSPEC's energy savings come from.")


if __name__ == "__main__":
    main()
