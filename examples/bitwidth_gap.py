#!/usr/bin/env python3
"""Measure the declared-vs-required bitwidth gap of your own kernel (§2).

Demonstrates the paper's motivating measurement on a user-provided MiniC
program: how many dynamic values actually need the bits the source declares?
Compares the programmer's selection, LLVM-style static analysis, and the
dynamic RequiredBits ground truth.

Run:  python examples/bitwidth_gap.py
"""

from repro.analysis import static_selection
from repro.core import set_global_inputs
from repro.frontend import compile_source
from repro.interp import Interpreter, bucket

# A histogram kernel: counts are tiny, indices are bytes, but everything is
# declared u32/u64 — exactly the conservative style the paper calls out.
SOURCE = """
u8  samples[512];
u64 nsamples;
u32 histogram[16];
u32 peak;

void main() {
    for (u64 i = 0; i < nsamples; i += 1) {
        u32 bin = samples[(u32)i] >> 4;
        histogram[bin] += 1;
    }
    u32 best = 0;
    for (u32 b = 0; b < 16; b += 1) {
        if (histogram[b] > best) { best = histogram[b]; }
    }
    peak = best;
    out(best);
}
"""


def percent(hist: dict) -> dict:
    total = sum(hist.values()) or 1
    return {w: 100.0 * c / total for w, c in hist.items()}


def main() -> None:
    module = compile_source(SOURCE)
    inputs = {"samples": [(i * 31) % 256 for i in range(512)], "nsamples": 512}
    set_global_inputs(module, inputs)

    interp = Interpreter(module, trace=True)
    result = interp.run("main")
    trace = interp.trace
    print(f"kernel output: {result.output}\n")

    declared = percent(trace.declared_hist)
    required = percent(trace.required_hist)

    # weight the static selection by dynamic execution counts
    static_hist = {8: 0, 16: 0, 32: 0, 64: 0}
    for func in module.functions.values():
        selection = static_selection(func)
        for inst, bits in selection.items():
            stats = trace.var_stats.get((func.name, inst.name))
            if stats and stats.count:
                static_hist[bucket(bits)] += stats.count
    static = percent(static_hist)

    print(f"{'bitwidth':>10} {'declared':>10} {'static':>10} {'required':>10}")
    for width in (8, 16, 32, 64):
        print(
            f"{width:>10} {declared[width]:>9.1f}% {static[width]:>9.1f}% "
            f"{required[width]:>9.1f}%"
        )
    print(
        f"\nGap: the programmer declared {declared[32] + declared[64]:.0f}% of "
        f"dynamic values at 32/64 bits,\nbut only "
        f"{required[32] + required[64]:.0f}% actually need more than 16 — "
        f"{required[8]:.0f}% fit one register slice."
    )
    print("Static analysis closes part of the gap; speculation (BITSPEC)")
    print("closes the rest. See benchmarks/test_fig01_bitwidth_selection.py.")


if __name__ == "__main__":
    main()
