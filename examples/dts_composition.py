#!/usr/bin/env python3
"""RQ8 interactively: compose BITSPEC with dynamic timing slack.

Shows the four-processor comparison of Figure 17 on one workload, plus the
paper's future-work ablation — what a *bitwidth-aware* DTS estimator would
reclaim from the segmented ALU's shorter carry chains.

Run:  python examples/dts_composition.py [workload]
"""

import sys

from repro.arch import DTSModel
from repro.core import CompilerConfig, compile_binary
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dijkstra"
    workload = get_workload(name)
    inputs = workload.inputs("test")

    def energy(config, dts_model=None):
        binary = compile_binary(
            workload.source, config, profile_inputs=inputs, name=name
        )
        run = binary.run(inputs)
        if dts_model is not None:
            return dts_model.apply(run).total, run
        return run.energy().total, run

    base, _ = energy(CompilerConfig.baseline())
    spec, _ = energy(CompilerConfig.bitspec("max"))
    dts, _ = energy(CompilerConfig.dts(), DTSModel())
    combo, combo_run = energy(CompilerConfig.dts_bitspec("max"), DTSModel())
    aware = DTSModel.bitwidth_aware().apply(combo_run).total

    print(f"=== {name}: composing BITSPEC with time squeezing (Fig 17) ===\n")
    print(f"{'processor':24} {'energy nJ':>10} {'relative':>9}")
    print("-" * 46)
    for label, value in (
        ("BASELINE", base),
        ("BITSPEC", spec),
        ("DTS (time squeezing)", dts),
        ("DTS + BITSPEC", combo),
        ("  + bitwidth-aware DTS", aware),
    ):
        print(f"{label:24} {value/1e3:>10.1f} {value/base:>9.3f}")

    product = (spec / base) * (dts / base)
    print(f"\nproduct of the parts:    {product:>9.3f}")
    print(f"measured composition:    {combo/base:>9.3f}")
    print("\nThe production DTS estimator is bitwidth-blind, so the")
    print("composition lands at roughly the product (the paper's finding).")
    print("A bitwidth-aware estimator — the paper's future work — exploits")
    print("the 8-bit slice ops' shorter critical paths for further savings.")


if __name__ == "__main__":
    main()
