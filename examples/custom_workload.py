#!/usr/bin/env python3
"""Bring your own kernel: define, validate and evaluate a new workload.

Shows the full downstream-user flow: write a MiniC kernel, supply an input
generator and a Python oracle, then push it through every configuration and
the RQ6-style sensitivity check.

Run:  python examples/custom_workload.py
"""

from repro.core import CompilerConfig, compile_binary
from repro.workloads.base import Workload, XorShift, mix_seed

# An RLE (run-length encoding) compressor: byte-oriented inner loop with a
# run counter that rarely exceeds a few bits — a natural BITSPEC candidate.
SOURCE = """
u8 input[512];
u32 length;
u8 output[1024];
u32 out_len;

void main() {
    u32 w = 0;
    u32 i = 0;
    while (i < length) {
        u8 value = input[i];
        u32 run = 1;
        while (i + run < length && input[i + run] == value && run < 255) {
            run += 1;
        }
        output[w] = (u8)run;
        output[w + 1] = value;
        w += 2;
        i += run;
    }
    out_len = w;
    u32 check = 0;
    for (u32 k = 0; k < w; k += 1) {
        check = (check * 131 + output[k]) & 0xFFFFFF;
    }
    out(w);
    out(check);
}
"""


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0x51E, kind, seed))
    data = []
    while len(data) < 500:
        value = rng.below(256)
        run = 1 + rng.below(9 if kind != "alt" else 100)
        data.extend([value] * run)
    data = data[:500]
    return {"input": data, "length": len(data)}


def reference(inputs: dict) -> list:
    data = inputs["input"][: inputs["length"]]
    encoded = []
    i = 0
    while i < len(data):
        run = 1
        while i + run < len(data) and data[i + run] == data[i] and run < 255:
            run += 1
        encoded += [run, data[i]]
        i += run
    check = 0
    for byte in encoded:
        check = (check * 131 + byte) & 0xFFFFFF
    return [len(encoded), check]


def main() -> None:
    workload = Workload(
        name="rle",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="run-length encoder",
    )

    print("=== custom workload: run-length encoding ===\n")
    inputs = workload.inputs("test")
    expected = workload.expected_output(inputs)

    base_energy = None
    for config in (
        CompilerConfig.baseline(),
        CompilerConfig.bitspec("max"),
        CompilerConfig.nospec(),
    ):
        binary = compile_binary(SOURCE, config, profile_inputs=inputs, name="rle")
        run = binary.run(inputs)
        assert run.output == expected, config.name
        total = run.energy().total
        if base_energy is None:
            base_energy = total
        print(
            f"{config.name:12} energy {total/1e3:8.1f} nJ "
            f"({total/base_energy:.3f} rel)  instructions {run.instructions}"
        )

    # RQ6-style check: profile on long-run inputs, measure on short runs.
    alt = workload.inputs("alt")
    binary = compile_binary(SOURCE, CompilerConfig.bitspec("max"),
                            profile_inputs=alt, name="rle-altprof")
    run = binary.run(inputs)
    assert run.output == expected
    print(
        f"\nalt-profile  energy {run.energy().total/1e3:8.1f} nJ "
        f"({run.energy().total/base_energy:.3f} rel)  "
        f"misspeculations {run.misspeculations}"
    )
    print("\nSpeculation keeps the program correct even when the profile lied.")


if __name__ == "__main__":
    main()
